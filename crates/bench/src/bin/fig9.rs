//! Regenerates **Fig. 9**: CPU–eFPGA communication latency (single
//! processor, single transaction) with the four-way breakdown into NoC,
//! fast-domain cache, slow-domain cache, and CDC time, across eFPGA clock
//! frequencies, for all six mechanisms.
//!
//! Run: `cargo run --release -p duet-bench --bin fig9`

use duet_workloads::synthetic::{measure_latency, Mechanism};

fn main() {
    let freqs = [20.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0];
    println!("# Fig. 9: CPU-eFPGA round-trip latency (ns), system clock 1 GHz");
    println!(
        "{:<24} {:>8} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "mechanism", "MHz", "total", "noc", "fast", "slow", "cdc"
    );
    for m in Mechanism::ALL {
        for &f in &freqs {
            let p = measure_latency(m, f);
            println!(
                "{:<24} {:>8.0} {:>10.1} {:>8.1} {:>9.1} {:>9.1} {:>8.1}",
                m.label(),
                f,
                p.total.as_ns_f64(),
                p.breakdown.noc.as_ns_f64(),
                p.breakdown.cache_fast.as_ns_f64(),
                p.breakdown.cache_slow.as_ns_f64(),
                p.breakdown.cdc.as_ns_f64(),
            );
        }
        println!();
    }

    // Paper headline numbers for comparison.
    let reduction = |slow: Mechanism, fast: Mechanism, mhz: f64| {
        let s = measure_latency(slow, mhz).total.as_ps() as f64;
        let p = measure_latency(fast, mhz).total.as_ps() as f64;
        100.0 * (1.0 - p / s)
    };
    println!("# Headline reductions (paper: eFPGA pull 13-43%, CPU pull 42-82%, shadow 50-80%)");
    for &mhz in &[20.0, 100.0, 500.0] {
        println!(
            "  @{mhz:>3.0} MHz: efpga-pull {:>5.1}%   cpu-pull {:>5.1}%   shadow-reg {:>5.1}%",
            reduction(Mechanism::EfpgaPullSlow, Mechanism::EfpgaPullProxy, mhz),
            reduction(Mechanism::CpuPullSlow, Mechanism::CpuPullProxy, mhz),
            reduction(Mechanism::NormalReg, Mechanism::ShadowReg, mhz),
        );
    }
}
