//! Regenerates **Fig. 9**: CPU–eFPGA communication latency (single
//! processor, single transaction) with the four-way breakdown into NoC,
//! fast-domain cache, slow-domain cache, and CDC time, across eFPGA clock
//! frequencies, for all six mechanisms.
//!
//! Run: `cargo run --release -p duet-bench --bin fig9 [--threads N]`

use duet_bench::{configured_trace_path, parallel_map, Throughput};
use duet_workloads::synthetic::{measure_latency, measure_latency_traced, Mechanism};

fn main() {
    let tp = Throughput::start();
    let freqs = [20.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0];
    // Every (mechanism, frequency) cell is an independent simulation; fan
    // them out and reassemble in deterministic (input) order.
    let cells: Vec<(Mechanism, f64)> = Mechanism::ALL
        .into_iter()
        .flat_map(|m| freqs.into_iter().map(move |f| (m, f)))
        .collect();
    let points = parallel_map(cells.clone(), |(m, f)| measure_latency(m, f));
    let lookup = |m: Mechanism, f: f64| {
        let i = cells
            .iter()
            .position(|&(cm, cf)| cm == m && cf == f)
            .expect("cell swept");
        &points[i]
    };

    println!("# Fig. 9: CPU-eFPGA round-trip latency (ns), system clock 1 GHz");
    println!(
        "{:<24} {:>8} {:>10} {:>8} {:>9} {:>9} {:>8}",
        "mechanism", "MHz", "total", "noc", "fast", "slow", "cdc"
    );
    for m in Mechanism::ALL {
        for &f in &freqs {
            let p = lookup(m, f);
            println!(
                "{:<24} {:>8.0} {:>10.1} {:>8.1} {:>9.1} {:>9.1} {:>8.1}",
                m.label(),
                f,
                p.total.as_ns_f64(),
                p.breakdown.noc.as_ns_f64(),
                p.breakdown.cache_fast.as_ns_f64(),
                p.breakdown.cache_slow.as_ns_f64(),
                p.breakdown.cdc.as_ns_f64(),
            );
        }
        println!();
    }

    // Paper headline numbers for comparison (reuses the swept cells).
    let reduction = |slow: Mechanism, fast: Mechanism, mhz: f64| {
        let s = lookup(slow, mhz).total.as_ps() as f64;
        let p = lookup(fast, mhz).total.as_ps() as f64;
        100.0 * (1.0 - p / s)
    };
    println!("# Headline reductions (paper: eFPGA pull 13-43%, CPU pull 42-82%, shadow 50-80%)");
    for &mhz in &[20.0, 100.0, 500.0] {
        println!(
            "  @{mhz:>3.0} MHz: efpga-pull {:>5.1}%   cpu-pull {:>5.1}%   shadow-reg {:>5.1}%",
            reduction(Mechanism::EfpgaPullSlow, Mechanism::EfpgaPullProxy, mhz),
            reduction(Mechanism::CpuPullSlow, Mechanism::CpuPullProxy, mhz),
            reduction(Mechanism::NormalReg, Mechanism::ShadowReg, mhz),
        );
    }

    // Component-graph link counters for one representative cell per
    // mechanism (100 MHz): where traffic flows and where it stalls.
    println!();
    println!("# Per-link occupancy/stall counters @100 MHz (links with traffic or rejections)");
    println!(
        "{:<24} {:<28} {:>8} {:>8} {:>9} {:>6} {:>6}",
        "mechanism", "link", "pushes", "pops", "rejected", "peak", "cap"
    );
    for m in Mechanism::ALL {
        let p = lookup(m, 100.0);
        for (name, r) in &p.links {
            if r.stats.pushes == 0 && r.stats.rejected_pushes == 0 {
                continue;
            }
            println!(
                "{:<24} {:<28} {:>8} {:>8} {:>9} {:>6} {:>6}",
                m.label(),
                name,
                r.stats.pushes,
                r.stats.pops,
                r.stats.rejected_pushes,
                r.stats.peak_occupancy,
                r.capacity.map_or("inf".to_string(), |c| c.to_string()),
            );
        }
        println!();
    }
    // `--trace <path>` / `DUET_TRACE`: re-run one representative cell
    // (proxy-cached CPU pull @ 100 MHz) with full event tracing and dump
    // the Chrome trace-event JSON. The traced rerun is bit-identical to
    // the untraced sweep cell above — instrumentation is read-only.
    if let Some(path) = configured_trace_path() {
        let tcfg = duet_trace::TraceConfig::default();
        let (traced, json) = measure_latency_traced(Mechanism::CpuPullProxy, 100.0, Some(&tcfg));
        assert_eq!(
            traced.total,
            lookup(Mechanism::CpuPullProxy, 100.0).total,
            "tracing must not perturb simulated time"
        );
        let json = json.expect("tracing enabled");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("# fig9: chrome trace (cpu-pull-proxy @100 MHz) written to {path}"),
            Err(e) => eprintln!("# fig9: failed to write trace to {path}: {e}"),
        }
    }
    duet_bench::maybe_run_faulted("fig9");
    tp.report("fig9");
}
