//! Ablation studies of Duet's design choices, beyond the paper's figures:
//!
//! 1. **Proxy-Cache MSHR count** — the paper notes cache-based bandwidth is
//!    bounded by "the number of concurrent, in-flight memory requests
//!    supported by the Proxy Cache"; sweep it.
//! 2. **Synchronizer depth** — the CDC cost model: async FIFOs "typically
//!    take two to four stages"; sweep latency vs stages.
//! 3. **Kernel page-fault latency** — how OS handling cost affects a
//!    TLB-enabled accelerator's first-touch penalty.
//!
//! Run: `cargo run --release -p duet-bench --bin ablation [--threads N]`

use duet_bench::{parallel_map, Throughput};
use duet_sim::{AsyncFifo, Clock, Time};
use duet_workloads::synthetic::{measure_bandwidth, measure_latency, Mechanism};

fn main() {
    let tp = Throughput::start();
    mshr_sweep();
    sync_stage_sweep();
    tp.report("ablation");
}

/// Bandwidth vs Proxy-Cache MSHRs (in-flight request bound).
fn mshr_sweep() {
    println!("# Ablation 1: eFPGA-pull bandwidth vs Proxy Cache MSHRs (100 MHz eFPGA)");
    println!("{:<8} {:>12}", "mshrs", "MB/s");
    let counts = vec![1usize, 2, 4, 8, 16];
    let bws = parallel_map(counts.clone(), bandwidth_with_mshrs);
    for (mshrs, bw) in counts.iter().zip(&bws) {
        println!("{:<8} {:>12.0}", mshrs, bw);
    }
    println!();
}

fn bandwidth_with_mshrs(mshrs: usize) -> f64 {
    // The synthetic driver reads the MSHR count from SystemConfig; patch it
    // through the environment the driver exposes: re-run measure_bandwidth
    // with a custom-configured system is not exposed, so emulate the sweep
    // at the protocol level instead: saturating line loads through a
    // ProtocolHarness with the given MSHR count.
    use duet_mem::priv_cache::CacheConfig;
    use duet_mem::testkit::ProtocolHarness;
    use duet_mem::types::MemReq;
    let cfg = CacheConfig::dolly_l2(Clock::ghz1()).with_mshrs(mshrs);
    let mut h = ProtocolHarness::new(2, 2, 1, cfg);
    let lines = 256u64;
    let mut next = 0u64;
    let mut done = 0u64;
    let start_checked = std::cell::Cell::new(None);
    while done < lines {
        if next < lines && h.caches[0].can_accept() {
            h.request(0, MemReq::load_line(next, 0x1_0000 + next * 16));
            next += 1;
        }
        for _ in h.step() {
            if start_checked.get().is_none() {
                start_checked.set(Some(h.now()));
            }
            done += 1;
        }
    }
    let t = h.now();
    let bytes = lines * 16;
    bytes as f64 / (t.as_ps() as f64 * 1e-12) / 1e6
}

/// Round-trip latency contribution of the synchronizer depth.
fn sync_stage_sweep() {
    println!("# Ablation 2: CDC crossing latency vs synchronizer stages");
    println!("# (one fast->slow crossing at 100 MHz consumer)");
    println!("{:<8} {:>12}", "stages", "ns");
    let fast = Clock::ghz1();
    let slow = Clock::from_mhz(100.0);
    for stages in 1..=4u32 {
        let mut f: AsyncFifo<u8> = AsyncFifo::new(4, stages, fast, slow);
        let t0 = fast.first_edge();
        f.push(t0, 1).unwrap();
        // Find the first visible slow edge.
        let mut t = t0;
        loop {
            t = slow.next_edge_after(t);
            if f.front(t).is_some() {
                break;
            }
        }
        println!("{:<8} {:>12.1}", stages, (t - t0).as_ns_f64());
    }
    println!();
    println!("# Ablation 3: shadow-vs-normal register latency gap by clock");
    println!(
        "{:<8} {:>12} {:>12} {:>8}",
        "MHz", "normal ns", "shadow ns", "gap"
    );
    let mhzs = vec![20.0f64, 100.0, 500.0];
    // Two independent simulations per clock point.
    let points = parallel_map(mhzs.clone(), |mhz| {
        (
            measure_latency(Mechanism::NormalReg, mhz),
            measure_latency(Mechanism::ShadowReg, mhz),
        )
    });
    for (mhz, (n, s)) in mhzs.iter().zip(&points) {
        println!(
            "{:<8.0} {:>12.1} {:>12.1} {:>7.1}x",
            mhz,
            n.total.as_ns_f64(),
            s.total.as_ns_f64(),
            n.total.as_ps() as f64 / s.total.as_ps() as f64
        );
    }
    let _ = measure_bandwidth; // referenced for future extension
    let _ = Time::ZERO;
    duet_bench::maybe_write_trace("ablation");
    duet_bench::maybe_run_faulted("ablation");
}
