//! Regenerates **Fig. 10**: single-processor CPU↔eFPGA bandwidth vs eFPGA
//! clock frequency, passing 512 quad-words each way (the paper's
//! protocol), for all six mechanisms.
//!
//! Run: `cargo run --release -p duet-bench --bin fig10 [--threads N]`

use duet_bench::{parallel_map, Throughput};
use duet_workloads::synthetic::{measure_bandwidth, Mechanism};

fn main() {
    let tp = Throughput::start();
    let freqs = [20.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0];
    let nwords = 512; // the paper's 512 quad-words (4 KB buffers)
    let cells: Vec<(Mechanism, f64)> = Mechanism::ALL
        .into_iter()
        .flat_map(|m| freqs.into_iter().map(move |f| (m, f)))
        .collect();
    let points = parallel_map(cells.clone(), |(m, f)| measure_bandwidth(m, f, nwords));
    let lookup = |m: Mechanism, f: f64| {
        let i = cells
            .iter()
            .position(|&(cm, cf)| cm == m && cf == f)
            .expect("cell swept");
        &points[i]
    };

    println!("# Fig. 10: processor-eFPGA bandwidth (MB/s), 512 quad-words, 1 GHz system");
    print!("{:<24}", "mechanism");
    for f in freqs {
        print!(" {:>8.0}", f);
    }
    println!("  (MHz)");
    for m in Mechanism::ALL {
        print!("{:<24}", m.label());
        for &f in &freqs {
            print!(" {:>8.0}", lookup(m, f).mbps());
        }
        println!();
    }
    println!();
    println!("# Paper reference points: proxy eFPGA-pull peaks 558 MB/s (>=100 MHz);");
    println!("# proxy CPU-pull 201 MB/s (>=50 MHz); slow cache 287/144 MB/s at 500 MHz;");
    println!("# shadow regs 213 MB/s (>=50 MHz); normal regs 121 MB/s at 500 MHz;");
    println!("# largest proxy/slow gap at 100 MHz (9.5x in the paper).");
    let p100 = lookup(Mechanism::EfpgaPullProxy, 100.0).mbps();
    let s100 = lookup(Mechanism::EfpgaPullSlow, 100.0).mbps();
    println!("# measured proxy/slow gap @100 MHz: {:.1}x", p100 / s100);
    duet_bench::maybe_write_trace("fig10");
    duet_bench::maybe_run_faulted("fig10");
    tp.report("fig10");
}
