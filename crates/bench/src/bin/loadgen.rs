//! `loadgen` — a deterministic load generator for `duet-serve`.
//!
//! Fires a skewed request mix (a few hot specs, a long tail of cold ones)
//! at a service instance through the real HTTP path and reports cache hit
//! rate plus latency percentiles split by hit/miss. With no `--addr` it
//! self-hosts a server in-process, which is what CI's `serve-smoke` job
//! runs: the artifact it writes is the service-layer throughput record.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--requests N] [--threads N] [--seed N]
//!         [--workers N] [--out FILE] [--retries N]
//! ```
//!
//! The mix is generated from `--seed` with the simulator's own
//! deterministic RNG, so two invocations against fresh servers issue the
//! identical request sequence and (modulo wall-clock timing) produce the
//! identical hit/miss ledger.
//!
//! Requests ride the retrying client: transient refusals (429/503,
//! connection errors) back off exponentially with per-thread
//! deterministic jitter and honor the server's `Retry-After`, so a
//! briefly saturated or restarting server shows up as latency, not as
//! failed samples. `--retries 1` restores one-shot behavior.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use duet_bench::parallel_map;
use duet_serve::client::{self, RetryPolicy};
use duet_serve::json::Json;
use duet_serve::server::{ServeConfig, Server};
use duet_sim::SimRng;

/// The spec pool: index 0..HOT are "hot" (drawn often, so they cache);
/// the rest are cold singles. All bounded small enough that a full sweep
/// stays inside a CI minute.
const HOT: usize = 4;

fn spec_pool() -> Vec<String> {
    // Hot set: the requests real users repeat.
    let mut pool = vec![
        r#"{"workload":"popcount","n":6,"seed":42}"#.to_string(),
        r#"{"workload":"tangent","n":6,"seed":42}"#.to_string(),
        r#"{"workload":"popcount","n":6,"seed":42,"variant":"fpsoc"}"#.to_string(),
        r#"{"workload":"stream_stores","variant":"proc-only","processors":2,"stores":256}"#
            .to_string(),
    ];
    // Cold tail: parameter scans that mostly miss.
    for seed in 100..112 {
        pool.push(format!(r#"{{"workload":"popcount","n":4,"seed":{seed}}}"#));
    }
    for seed in 100..106 {
        pool.push(format!(r#"{{"workload":"tangent","n":4,"seed":{seed}}}"#));
    }
    pool
}

/// Draws a request index with ~70% of the mass on the hot set.
fn draw(rng: &mut SimRng, pool_len: usize) -> usize {
    if rng.gen_range(0..10) < 7 {
        rng.gen_range(0..HOT as u64) as usize
    } else {
        HOT + rng.gen_range(0..(pool_len - HOT) as u64) as usize
    }
}

struct Sample {
    latency_ms: f64,
    hit: bool,
    ok: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn stats_line(label: &str, samples: &[&Sample]) -> String {
    let mut lats: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    format!(
        "{label}: n={} p50={:.2}ms p90={:.2}ms p99={:.2}ms",
        lats.len(),
        percentile(&lats, 0.50),
        percentile(&lats, 0.90),
        percentile(&lats, 0.99),
    )
}

fn json_stats(samples: &[&Sample]) -> String {
    let mut lats: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    format!(
        "{{ \"n\": {}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3} }}",
        lats.len(),
        percentile(&lats, 0.50),
        percentile(&lats, 0.90),
        percentile(&lats, 0.99),
    )
}

fn main() {
    let mut addr: Option<SocketAddr> = None;
    let mut requests = 64usize;
    let mut seed = 1u64;
    let mut workers = 2usize;
    let mut out: Option<String> = None;
    let mut retries = 5u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--addr" => {
                addr = Some(val("--addr").parse().unwrap_or_else(|e| {
                    eprintln!("bad --addr: {e}");
                    std::process::exit(2);
                }))
            }
            "--requests" => requests = val("--requests").parse().expect("number"),
            "--seed" => seed = val("--seed").parse().expect("number"),
            "--workers" => workers = val("--workers").parse().expect("number"),
            "--out" => out = Some(val("--out")),
            "--retries" => retries = val("--retries").parse().expect("number"),
            "--threads" => {
                val("--threads");
            } // consumed by parallel_map via configured_threads
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    // Self-host unless pointed at a live server.
    let hosted = if addr.is_none() {
        let server = Server::start(ServeConfig {
            workers,
            wait_timeout: Duration::from_secs(240),
            ..ServeConfig::default()
        })
        .expect("server starts");
        addr = Some(server.addr());
        Some(server)
    } else {
        None
    };
    let addr = addr.expect("addr resolved above");

    let pool = spec_pool();
    let mut rng = SimRng::new(seed);
    let mix: Vec<usize> = (0..requests).map(|_| draw(&mut rng, pool.len())).collect();

    let wall = Instant::now();
    let mix: Vec<(usize, usize)> = mix.into_iter().enumerate().collect();
    let samples: Vec<Sample> = parallel_map(mix, |(req_no, idx)| {
        let body = pool[idx].as_bytes();
        // Per-request seed: each in-flight request jitters independently,
        // but the whole schedule is still a pure function of --seed.
        let policy = RetryPolicy {
            max_attempts: retries.max(1),
            seed: seed ^ (req_no as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..RetryPolicy::default()
        };
        let start = Instant::now();
        let resp = client::post_json_retry(addr, "/v1/runs?wait=1", Some("loadgen"), body, &policy);
        let latency_ms = start.elapsed().as_secs_f64() * 1e3;
        match resp {
            Ok(r) if r.status == 200 => {
                let hit = r
                    .json()
                    .ok()
                    .and_then(|j| j.get("cache").and_then(Json::as_str).map(|s| s == "hit"))
                    .unwrap_or(false);
                Sample {
                    latency_ms,
                    hit,
                    ok: true,
                }
            }
            _ => Sample {
                latency_ms,
                hit: false,
                ok: false,
            },
        }
    });
    let wall_s = wall.elapsed().as_secs_f64();

    let ok: Vec<&Sample> = samples.iter().filter(|s| s.ok).collect();
    let hits: Vec<&Sample> = ok.iter().filter(|s| s.hit).copied().collect();
    let misses: Vec<&Sample> = ok.iter().filter(|s| !s.hit).copied().collect();
    let hit_rate = if ok.is_empty() {
        0.0
    } else {
        hits.len() as f64 / ok.len() as f64
    };
    println!(
        "# loadgen: {} requests in {wall_s:.2}s ({:.1} req/s), {} ok, hit rate {:.1}%",
        samples.len(),
        samples.len() as f64 / wall_s.max(1e-9),
        ok.len(),
        hit_rate * 100.0
    );
    println!("# {}", stats_line("all", &ok));
    println!("# {}", stats_line("hit", &hits));
    println!("# {}", stats_line("miss", &misses));

    if let Some(server) = hosted {
        let stats = server.state().cache.stats();
        println!(
            "# cache: {} entries, {} hits, {} misses, {} inserts",
            stats.entries, stats.hits, stats.misses, stats.inserts
        );
        server.shutdown();
    }

    if let Some(path) = out {
        let body = format!(
            "{{\n  \"schema\": \"duet-loadgen-v1\",\n  \"requests\": {},\n  \"ok\": {},\n  \
             \"hit_rate\": {:.4},\n  \"wall_s\": {:.3},\n  \"all\": {},\n  \"hit\": {},\n  \
             \"miss\": {}\n}}\n",
            samples.len(),
            ok.len(),
            hit_rate,
            wall_s,
            json_stats(&ok),
            json_stats(&hits),
            json_stats(&misses),
        );
        std::fs::write(&path, body).expect("write loadgen report");
        println!("# wrote {path}");
    }

    if ok.len() != samples.len() {
        eprintln!("loadgen: {} requests failed", samples.len() - ok.len());
        std::process::exit(1);
    }
}
