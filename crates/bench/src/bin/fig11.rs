//! Regenerates **Fig. 11**: per-processor soft-register bandwidth vs
//! number of contending processors (eFPGA fixed at 500 MHz), shadow vs
//! normal registers.
//!
//! Run: `cargo run --release -p duet-bench --bin fig11 [--threads N]`

use duet_bench::{parallel_map, Throughput};
use duet_workloads::synthetic::measure_contention;

fn main() {
    let tp = Throughput::start();
    let procs = [1usize, 2, 4, 8, 16];
    let pairs = 64;
    // 5 processor counts x {shadow, normal} = 10 independent simulations.
    let cells: Vec<(bool, usize)> = procs
        .iter()
        .flat_map(|&p| [(true, p), (false, p)])
        .collect();
    let points = parallel_map(cells, |(shadow, p)| measure_contention(shadow, p, pairs));

    println!("# Fig. 11: per-processor bandwidth (MB/s) vs contending processors");
    println!("# eFPGA at 500 MHz; each processor issues write/read pairs to one register");
    println!("{:<10} {:>14} {:>14}", "procs", "shadow", "normal");
    let mut rows = Vec::new();
    for (k, &p) in procs.iter().enumerate() {
        let s = &points[2 * k];
        let n = &points[2 * k + 1];
        println!(
            "{:<10} {:>14.1} {:>14.1}",
            p, s.per_proc_mbps, n.per_proc_mbps
        );
        rows.push((p, s.per_proc_mbps, n.per_proc_mbps));
    }
    println!();
    println!("# Paper: shadow registers sustain ~8 processors before per-processor");
    println!("# bandwidth drops; normal registers only ~2.");
    let knee = |col: fn(&(usize, f64, f64)) -> f64, rows: &[(usize, f64, f64)]| {
        let base = col(&rows[0]);
        rows.iter()
            .take_while(|r| col(r) > 0.8 * base)
            .map(|r| r.0)
            .last()
            .unwrap_or(1)
    };
    println!(
        "# measured knees: shadow sustains ~{} procs, normal ~{} procs",
        knee(|r| r.1, &rows),
        knee(|r| r.2, &rows)
    );
    duet_bench::maybe_write_trace("fig11");
    duet_bench::maybe_run_faulted("fig11");
    tp.report("fig11");
}
