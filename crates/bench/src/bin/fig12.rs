//! Regenerates **Fig. 12**: normalized speedup and area-delay product of
//! the seven application benchmarks on Duet and on the FPSoC-like
//! baseline, relative to the processor-only baseline.
//!
//! Run: `cargo run --release -p duet-bench --bin fig12`
//! (Takes several minutes: 13 configurations × 3 full-system simulations.)

use duet_fpga::area::{base_tile_area_mm2, normalized_adp, AreaModel};
use duet_fpga::fabric::FabricSpec;
use duet_workloads::common::{AppResult, BenchVariant};
use duet_workloads::{barnes_hut, bfs, dijkstra, pdes, popcount, sort, tangent};

struct Row {
    name: String,
    fabric_mm2: f64,
    base: AppResult,
    duet: AppResult,
    fpsoc: AppResult,
}

fn fabric_area(netlist: &duet_fpga::fabric::NetlistSummary) -> f64 {
    FabricSpec::k6_frac_n10_mem32k().implement(netlist).area_mm2
}

fn main() {
    let mut rows: Vec<Row> = Vec::new();
    let run3 = |f: &dyn Fn(BenchVariant) -> AppResult| {
        (
            f(BenchVariant::ProcOnly),
            f(BenchVariant::Duet),
            f(BenchVariant::Fpsoc),
        )
    };

    eprintln!("[fig12] tangent (P1M0)...");
    let (b, d, f) = run3(&|v| tangent::run(v, 96, 11));
    rows.push(Row {
        name: "tangent".into(),
        fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
            &tangent::TangentAccel::new(true),
        )),
        base: b,
        duet: d,
        fpsoc: f,
    });

    eprintln!("[fig12] popcount (P1M1)...");
    let (b, d, f) = run3(&|v| popcount::run(v, 48, 21));
    rows.push(Row {
        name: "popcount".into(),
        fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
            &popcount::PopcountAccel::new(true),
        )),
        base: b,
        duet: d,
        fpsoc: f,
    });

    for slice in [32u64, 64, 128] {
        eprintln!("[fig12] sort/{slice} (P1M2)...");
        // The paper's sorted arrays are network-sized (128-512 B): one
        // streaming pass, merged externally only in larger deployments.
        let (b, d, f) = run3(&|v| sort::run(v, slice, slice, 31));
        rows.push(Row {
            name: format!("sort/{slice}"),
            fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
                &sort::SortAccel::new(true, slice),
            )),
            base: b,
            duet: d,
            fpsoc: f,
        });
    }

    eprintln!("[fig12] dijkstra (P1M1)...");
    let (b, d, f) = run3(&|v| dijkstra::run(v, 192, 8, 41));
    rows.push(Row {
        name: "dijkstra".into(),
        fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
            &dijkstra::DijkstraAccel::new(true, true, dijkstra::DijkstraLayout::new()),
        )),
        base: b,
        duet: d,
        fpsoc: f,
    });

    eprintln!("[fig12] barnes-hut (P4M1)...");
    let (b, d, f) = run3(&|v| barnes_hut::run(v, 4, 48, 51));
    rows.push(Row {
        name: "barnes-hut".into(),
        fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
            &barnes_hut::BhAccel::new(true, 4, 0, 0),
        )),
        base: b,
        duet: d,
        fpsoc: f,
    });

    for p in [4usize, 8, 16] {
        eprintln!("[fig12] pdes/{p} (P{p}M1)...");
        let (b, d, f) = run3(&|v| pdes::run(v, p, 12, 6, 61));
        rows.push(Row {
            name: format!("pdes/{p}"),
            fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
                &pdes::TaskScheduler::new(true, p, &[]),
            )),
            base: b,
            duet: d,
            fpsoc: f,
        });
    }

    for p in [4usize, 8, 16] {
        eprintln!("[fig12] bfs/{p} (P{p}M0)...");
        let (b, d, f) = run3(&|v| bfs::run(v, p, 192, 4, 71));
        rows.push(Row {
            name: format!("bfs/{p}"),
            fabric_mm2: fabric_area(&duet_fpga::ports::SoftAccelerator::netlist(
                &bfs::FrontierQueues::new(true, p, 0),
            )),
            base: b,
            duet: d,
            fpsoc: f,
        });
    }

    println!("# Fig. 12: normalized speedup and ADP (baseline = processor-only = 1.0)");
    println!(
        "{:<12} {:>5} {:>11} {:>11} {:>11} | {:>9} {:>9} | {:>9} {:>9} | {:>3}",
        "benchmark", "P", "base us", "duet us", "fpsoc us", "spd duet", "spd fpsoc", "adp duet", "adp fpsoc", "ok"
    );
    let mut geo_duet = 1.0f64;
    let mut geo_fpsoc = 1.0f64;
    let mut geo_adp_duet = 1.0f64;
    let mut geo_adp_fpsoc = 1.0f64;
    for r in &rows {
        let s_duet = r.duet.speedup_over(&r.base);
        let s_fpsoc = r.fpsoc.speedup_over(&r.base);
        let model = AreaModel {
            processors: r.base.processors,
            memory_hubs: r.duet.memory_hubs,
            fabric_mm2: r.fabric_mm2,
        };
        let base_area = model.processor_only_mm2();
        let adp_duet = normalized_adp(
            model.duet_mm2(),
            r.duet.runtime.as_ps(),
            base_area,
            r.base.runtime.as_ps(),
        );
        let adp_fpsoc = normalized_adp(
            model.fpsoc_mm2(),
            r.fpsoc.runtime.as_ps(),
            base_area,
            r.base.runtime.as_ps(),
        );
        let ok = r.base.correct && r.duet.correct && r.fpsoc.correct;
        println!(
            "{:<12} {:>5} {:>11.1} {:>11.1} {:>11.1} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>3}",
            r.name,
            r.base.processors,
            r.base.runtime.as_us_f64(),
            r.duet.runtime.as_us_f64(),
            r.fpsoc.runtime.as_us_f64(),
            s_duet,
            s_fpsoc,
            adp_duet,
            adp_fpsoc,
            if ok { "yes" } else { "NO" }
        );
        geo_duet *= s_duet;
        geo_fpsoc *= s_fpsoc;
        geo_adp_duet *= adp_duet;
        geo_adp_fpsoc *= adp_fpsoc;
    }
    let n = rows.len() as f64;
    println!();
    println!(
        "# geomean speedup: duet {:.2}x, fpsoc {:.2}x (paper: 4.53x / 2.14x)",
        geo_duet.powf(1.0 / n),
        geo_fpsoc.powf(1.0 / n)
    );
    println!(
        "# geomean ADP: duet {:.2}, fpsoc {:.2} (paper: 0.39 / 1.23; lower is better)",
        geo_adp_duet.powf(1.0 / n),
        geo_adp_fpsoc.powf(1.0 / n)
    );
    println!(
        "# normalization tile: {:.2} mm2 (Ariane + P-Mesh socket)",
        base_tile_area_mm2()
    );
}
