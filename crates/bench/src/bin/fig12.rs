//! Regenerates **Fig. 12**: normalized speedup and area-delay product of
//! the seven application benchmarks on Duet and on the FPSoC-like
//! baseline, relative to the processor-only baseline.
//!
//! Run: `cargo run --release -p duet-bench --bin fig12 [--threads N]`
//! (13 configurations × 3 full-system simulations, fanned across cores.)

use duet_bench::{parallel_map, Throughput};
use duet_fpga::area::{base_tile_area_mm2, normalized_adp, AreaModel};
use duet_fpga::fabric::{FabricSpec, NetlistSummary};
use duet_fpga::ports::SoftAccelerator;
use duet_workloads::common::{AppResult, BenchVariant};
use duet_workloads::{barnes_hut, bfs, dijkstra, pdes, popcount, sort, tangent};

/// One Fig. 12 configuration; `run` builds its whole system (including
/// any `Rc`-based accelerator state) inside the calling worker thread.
#[derive(Clone, Copy)]
enum App {
    Tangent,
    Popcount,
    Sort(u64),
    Dijkstra,
    BarnesHut,
    Pdes(usize),
    Bfs(usize),
}

impl App {
    const ALL: [App; 13] = [
        App::Tangent,
        App::Popcount,
        App::Sort(32),
        App::Sort(64),
        App::Sort(128),
        App::Dijkstra,
        App::BarnesHut,
        App::Pdes(4),
        App::Pdes(8),
        App::Pdes(16),
        App::Bfs(4),
        App::Bfs(8),
        App::Bfs(16),
    ];

    fn name(&self) -> String {
        match self {
            App::Tangent => "tangent".into(),
            App::Popcount => "popcount".into(),
            App::Sort(n) => format!("sort/{n}"),
            App::Dijkstra => "dijkstra".into(),
            App::BarnesHut => "barnes-hut".into(),
            App::Pdes(p) => format!("pdes/{p}"),
            App::Bfs(p) => format!("bfs/{p}"),
        }
    }

    fn run(&self, v: BenchVariant) -> AppResult {
        match *self {
            App::Tangent => tangent::run(v, 96, 11),
            App::Popcount => popcount::run(v, 48, 21),
            // The paper's sorted arrays are network-sized (128-512 B): one
            // streaming pass, merged externally only in larger deployments.
            App::Sort(n) => sort::run(v, n, n, 31),
            App::Dijkstra => dijkstra::run(v, 192, 8, 41),
            App::BarnesHut => barnes_hut::run(v, 4, 48, 51),
            App::Pdes(p) => pdes::run(v, p, 12, 6, 61),
            App::Bfs(p) => bfs::run(v, p, 192, 4, 71),
        }
    }

    fn netlist(&self) -> NetlistSummary {
        match *self {
            App::Tangent => tangent::TangentAccel::new(true).netlist(),
            App::Popcount => popcount::PopcountAccel::new(true).netlist(),
            App::Sort(n) => sort::SortAccel::new(true, n).netlist(),
            App::Dijkstra => {
                dijkstra::DijkstraAccel::new(true, true, dijkstra::DijkstraLayout::new()).netlist()
            }
            App::BarnesHut => barnes_hut::BhAccel::new(true, 4, 0, 0).netlist(),
            App::Pdes(p) => pdes::TaskScheduler::new(true, p, &[]).netlist(),
            App::Bfs(p) => bfs::FrontierQueues::new(true, p, 0).netlist(),
        }
    }
}

struct Row {
    name: String,
    fabric_mm2: f64,
    base: AppResult,
    duet: AppResult,
    fpsoc: AppResult,
}

fn main() {
    let tp = Throughput::start();
    const VARIANTS: [BenchVariant; 3] = [
        BenchVariant::ProcOnly,
        BenchVariant::Duet,
        BenchVariant::Fpsoc,
    ];
    // 13 x 3 = 39 independent full-system simulations.
    let jobs: Vec<(App, BenchVariant)> = App::ALL
        .into_iter()
        .flat_map(|a| VARIANTS.into_iter().map(move |v| (a, v)))
        .collect();
    eprintln!(
        "[fig12] running {} simulations on {} thread(s)...",
        jobs.len(),
        duet_bench::configured_threads()
    );
    let results = parallel_map(jobs, |(a, v)| {
        eprintln!("[fig12] {} ({:?})...", a.name(), v);
        a.run(v)
    });

    let rows: Vec<Row> = App::ALL
        .iter()
        .enumerate()
        .map(|(k, a)| Row {
            name: a.name(),
            fabric_mm2: FabricSpec::k6_frac_n10_mem32k()
                .implement(&a.netlist())
                .area_mm2,
            base: results[3 * k].clone(),
            duet: results[3 * k + 1].clone(),
            fpsoc: results[3 * k + 2].clone(),
        })
        .collect();

    println!("# Fig. 12: normalized speedup and ADP (baseline = processor-only = 1.0)");
    println!(
        "{:<12} {:>5} {:>11} {:>11} {:>11} | {:>9} {:>9} | {:>9} {:>9} | {:>3}",
        "benchmark",
        "P",
        "base us",
        "duet us",
        "fpsoc us",
        "spd duet",
        "spd fpsoc",
        "adp duet",
        "adp fpsoc",
        "ok"
    );
    let mut geo_duet = 1.0f64;
    let mut geo_fpsoc = 1.0f64;
    let mut geo_adp_duet = 1.0f64;
    let mut geo_adp_fpsoc = 1.0f64;
    for r in &rows {
        let s_duet = r.duet.speedup_over(&r.base);
        let s_fpsoc = r.fpsoc.speedup_over(&r.base);
        let model = AreaModel {
            processors: r.base.processors,
            memory_hubs: r.duet.memory_hubs,
            fabric_mm2: r.fabric_mm2,
        };
        let base_area = model.processor_only_mm2();
        let adp_duet = normalized_adp(
            model.duet_mm2(),
            r.duet.runtime.as_ps(),
            base_area,
            r.base.runtime.as_ps(),
        );
        let adp_fpsoc = normalized_adp(
            model.fpsoc_mm2(),
            r.fpsoc.runtime.as_ps(),
            base_area,
            r.base.runtime.as_ps(),
        );
        let ok = r.base.correct && r.duet.correct && r.fpsoc.correct;
        println!(
            "{:<12} {:>5} {:>11.1} {:>11.1} {:>11.1} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>3}",
            r.name,
            r.base.processors,
            r.base.runtime.as_us_f64(),
            r.duet.runtime.as_us_f64(),
            r.fpsoc.runtime.as_us_f64(),
            s_duet,
            s_fpsoc,
            adp_duet,
            adp_fpsoc,
            if ok { "yes" } else { "NO" }
        );
        geo_duet *= s_duet;
        geo_fpsoc *= s_fpsoc;
        geo_adp_duet *= adp_duet;
        geo_adp_fpsoc *= adp_fpsoc;
    }
    let n = rows.len() as f64;
    println!();
    println!(
        "# geomean speedup: duet {:.2}x, fpsoc {:.2}x (paper: 4.53x / 2.14x)",
        geo_duet.powf(1.0 / n),
        geo_fpsoc.powf(1.0 / n)
    );
    println!(
        "# geomean ADP: duet {:.2}, fpsoc {:.2} (paper: 0.39 / 1.23; lower is better)",
        geo_adp_duet.powf(1.0 / n),
        geo_adp_fpsoc.powf(1.0 / n)
    );
    println!(
        "# normalization tile: {:.2} mm2 (Ariane + P-Mesh socket)",
        base_tile_area_mm2()
    );
    duet_bench::maybe_write_trace("fig12");
    duet_bench::maybe_run_faulted("fig12");
    tp.report("fig12");
}
