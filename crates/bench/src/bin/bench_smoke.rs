//! CI bench smoke: a fast release-mode throughput check that tracks the
//! simulator's perf trajectory from PR 3 onward.
//!
//! Scenarios, all small enough for a CI minute:
//!
//! 1. **fig9** — the Fig. 9 latency-sweep harness is spawned as a
//!    subprocess (it sits next to this binary in `target/release/`) and
//!    its standard `throughput:` line is parsed back out. This exercises
//!    the real harness path end to end: sweep, parallel map, metrics.
//! 2. **stream_stores_p4** — the coherence-heavy scenario from the engine
//!    micro-benches, run in-process: four cores stream stores over a
//!    shared 64 KB region so the directory/MSHR/backing-store hot paths
//!    dominate wall time.
//! 3. **noc_hotspot_8x8 / noc_hotspot_16x16** — intra-run scaling: the
//!    `mesh_8x8` / `mesh_16x16` presets with every core hammering a
//!    shared hotspot region, swept over 1/2/4/8 *simulation* threads
//!    (`SystemConfig::sim_threads`) and — on a second axis — over
//!    1/2/4 *mesh-tick* shards (`SystemConfig::mesh_shards`) at one
//!    sim thread. These cells run with one sweep worker each — sweep
//!    workers multiply with intra-run threads, so the smoke run keeps
//!    the product equal to the sim-thread count. The mesh-shard axis
//!    also yields the serial-vs-sharded `mesh_tick` cell: shards=1 is
//!    the serial mesh tick, shards=4 the sharded schedule (inline on a
//!    single-CPU host), and the recorded overhead percentage is the
//!    pass-split cost.
//!
//! 4. **snapshot costs** — serialized snapshot size plus `snapshot()`,
//!    `restore()`, and `fork()` wall time for the `proc_only_4`,
//!    `mesh_8x8`, and `mesh_16x16` presets (warmed 500 ns), recorded
//!    under the `snapshot` key.
//!
//! 5. **serve** — the service layer: an in-process `duet-serve` instance
//!    answers a cold `POST /v1/runs?wait=1` (full simulation) and then
//!    the same spec again (content-addressed cache hit), recording both
//!    latencies, the payload size, and the JSON encode/decode cost of
//!    the payload — the numbers that justify the cache.
//!
//! Results land in `BENCH_pr9.json` (repo root by default, or the path
//! given as the first non-flag argument) as edges/sec per scenario —
//! scalar for the single-config scenarios, `threads` and `mesh_shards`
//! maps for the scaling ones — plus the `mesh_tick` overhead cell, the
//! `snapshot` cost table, and the `serve` cell (schema
//! `duet-bench-smoke-v5`). The file is committed so the perf record
//! survives in-tree; CI regenerates it on every push to catch harness
//! rot and big regressions.
//!
//! Run: `cargo run --release -p duet-bench --bin bench_smoke [out.json]`

use std::sync::Arc;
use std::time::Instant;

use duet_sim::Time;
use duet_system::{metrics, System, SystemConfig};

/// Runs the sibling `fig9` binary and parses `edges/sec` from its
/// `# fig9 throughput: 1.056e7 edges/sec, ...` line.
fn fig9_edges_per_sec() -> Option<f64> {
    let me = std::env::current_exe().ok()?;
    let fig9 = me.parent()?.join("fig9");
    if !fig9.exists() {
        eprintln!(
            "bench_smoke: {} not built, skipping fig9 leg",
            fig9.display()
        );
        return None;
    }
    // The trace flag (if any) is honored by this binary itself; don't let
    // the subprocess race it to the same output path.
    let out = std::process::Command::new(&fig9)
        .args(["--threads", "2"])
        .env_remove("DUET_TRACE")
        .output()
        .ok()?;
    if !out.status.success() {
        eprintln!("bench_smoke: fig9 exited with {}", out.status);
        return None;
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().find(|l| l.contains("throughput:"))?;
    println!("{line}");
    let rest = line.split("throughput:").nth(1)?;
    let value = rest.split_whitespace().next()?;
    value.parse::<f64>().ok()
}

/// The coherence-heavy engine-bench scenario, measured in-process via the
/// process-wide edge counters.
fn stream_stores_edges_per_sec() -> f64 {
    let mut st = duet_cpu::asm::Asm::new();
    st.label("main");
    st.li(duet_cpu::isa::regs::T[0], 0x10_0000);
    st.li(duet_cpu::isa::regs::T[2], 0x10_0000 + 0x1_0000);
    st.label("loop");
    st.sd(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
    st.addi(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[0], 16);
    st.blt(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[2], "loop");
    st.halt();
    let stream = Arc::new(st.assemble().expect("static program assembles"));

    // Back-to-back legs in one process: zero the process-wide counters so
    // this leg's throughput is measured from a clean slate rather than by
    // subtracting snapshots.
    metrics::reset();
    let start = Instant::now();
    let mut sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
    for core in 0..4 {
        sys.load_program(core, stream.clone(), "main");
    }
    sys.run_until_halt(Time::from_us(4_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(5_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let (edges, _) = metrics::snapshot();
    let eps = edges as f64 / wall;
    println!("# stream_stores_p4 throughput: {eps:.3e} edges/sec (wall {wall:.3}s)");
    // The runtime-verification verdict for the leg: deterministic counters
    // (checked-message totals and violation counts), never wall-clock.
    for (name, value) in sys.metrics_registry().iter() {
        if name.starts_with("verify.") {
            println!("# stream_stores_p4 {name} = {value}");
        }
    }
    eps
}

/// One intra-run-scaling cell: every core of `cfg` streams stores into a
/// shared hotspot window (lines interleave across L3 homes, so the
/// traffic crosses shard boundaries), with the simulation sharded over
/// `threads` threads and the mesh tick over `mesh_shards` shards
/// (`0` = follow the thread count). Returns edges/sec and the final
/// simulated time — the latter is printed so a scaling sweep visibly
/// produces identical simulated results at every cell.
fn noc_hotspot_edges_per_sec(
    mut cfg: SystemConfig,
    threads: usize,
    mesh_shards: usize,
) -> (f64, Time) {
    cfg.sim_threads = threads;
    cfg.mesh_shards = mesh_shards;
    let mut a = duet_cpu::asm::Asm::new();
    a.label("main");
    a.li(duet_cpu::isa::regs::T[0], 0x20_0000);
    a.li(duet_cpu::isa::regs::T[2], 0x20_0000 + 0x1000);
    a.label("loop");
    a.sd(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
    a.addi(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[0], 64);
    a.blt(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[2], "loop");
    a.halt();
    let prog = Arc::new(a.assemble().expect("static program assembles"));

    metrics::reset();
    let start = Instant::now();
    let mut sys = System::new(cfg).expect("valid config");
    for core in 0..sys.config().processors {
        sys.load_program(core, prog.clone(), "main");
    }
    sys.run_until_halt(Time::from_us(40_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let end = sys
        .quiesce(Time::from_us(50_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let (edges, _) = metrics::snapshot();
    ((edges as f64 / wall), end)
}

/// Snapshot-layer costs for one preset: serialized size plus wall time
/// for `snapshot()`, `restore()` (into a freshly built system), and
/// `fork()`. Timings are the minimum over three iterations — a smoke
/// record tracks the trajectory, not a rigorous benchmark.
struct SnapshotCosts {
    snapshot_bytes: usize,
    snapshot_ms: f64,
    restore_ms: f64,
    fork_ms: f64,
}

/// Measures [`SnapshotCosts`] on a warmed instance of `build()`: run to
/// `warm`, snapshot, restore into a second fresh instance, fork.
fn snapshot_costs(name: &str, build: &dyn Fn() -> System, warm: Time) -> SnapshotCosts {
    let mut sys = build();
    sys.run_until_time(warm);
    let mut costs = SnapshotCosts {
        snapshot_bytes: sys.snapshot().len(),
        snapshot_ms: f64::INFINITY,
        restore_ms: f64::INFINITY,
        fork_ms: f64::INFINITY,
    };
    for _ in 0..3 {
        let start = Instant::now();
        let bytes = sys.snapshot();
        costs.snapshot_ms = costs.snapshot_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let mut fresh = build();
        let start = Instant::now();
        fresh
            .restore(&bytes)
            .unwrap_or_else(|e| panic!("{name}: self-restore failed: {e}"));
        costs.restore_ms = costs.restore_ms.min(start.elapsed().as_secs_f64() * 1e3);

        let start = Instant::now();
        let child = sys.fork();
        costs.fork_ms = costs.fork_ms.min(start.elapsed().as_secs_f64() * 1e3);
        drop(child);
    }
    println!(
        "# {name} snapshot: {} bytes, snapshot {:.3} ms, restore {:.3} ms, fork {:.3} ms",
        costs.snapshot_bytes, costs.snapshot_ms, costs.restore_ms, costs.fork_ms
    );
    costs
}

/// The snapshot-cost presets: the coherence-heavy 4-core scenario and the
/// two mesh hotspots, each warmed briefly so caches, NoC queues, and the
/// backing store carry real state.
fn snapshot_costs_sweep() -> Vec<(&'static str, SnapshotCosts)> {
    let stream = {
        let mut a = duet_cpu::asm::Asm::new();
        a.label("main");
        a.li(duet_cpu::isa::regs::T[0], 0x10_0000);
        a.li(duet_cpu::isa::regs::T[2], 0x10_0000 + 0x1_0000);
        a.label("loop");
        a.sd(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
        a.addi(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[0], 16);
        a.blt(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[2], "loop");
        a.halt();
        Arc::new(a.assemble().expect("static program assembles"))
    };
    let build_preset = |cfg: SystemConfig, prog: &Arc<duet_cpu::Program>| {
        let mut sys = System::new(cfg).expect("valid config");
        for core in 0..sys.config().processors {
            sys.load_program(core, prog.clone(), "main");
        }
        sys
    };
    let mut out = Vec::new();
    for (name, cfg) in [
        ("proc_only_4", SystemConfig::proc_only(4)),
        ("mesh_8x8", SystemConfig::mesh_8x8()),
        ("mesh_16x16", SystemConfig::mesh_16x16()),
    ] {
        let prog = stream.clone();
        let build = move || build_preset(cfg.clone(), &prog);
        out.push((name, snapshot_costs(name, &build, Time::from_ns(500))));
    }
    out
}

/// Sweeps a hotspot scenario over simulation-thread counts (mesh shards
/// following the thread count, the default). Each cell runs alone (one
/// sweep worker): sweep × intra-run threads multiply.
fn noc_hotspot_sweep(name: &str, cfg: &SystemConfig) -> Vec<(usize, f64)> {
    let mut points = Vec::new();
    let mut end_at_one = None;
    for threads in [1usize, 2, 4, 8] {
        let (eps, end) = noc_hotspot_edges_per_sec(cfg.clone(), threads, 0);
        match end_at_one {
            None => end_at_one = Some(end),
            Some(t0) => assert_eq!(
                t0, end,
                "{name}: simulated end time diverged at {threads} sim threads"
            ),
        }
        println!(
            "# {name} threads={threads} throughput: {eps:.3e} edges/sec (sim end {} ps)",
            end.as_ps()
        );
        points.push((threads, eps));
    }
    points
}

/// Sweeps a hotspot scenario over mesh-tick shard counts at one sim
/// thread. Shards=1 is the serial mesh tick; higher counts run the
/// sharded schedule — pooled on a multi-core host, inline on a
/// single-CPU one — and must land on the identical simulated end time.
fn mesh_shard_sweep(name: &str, cfg: &SystemConfig) -> Vec<(usize, f64)> {
    let mut points = Vec::new();
    let mut end_at_one = None;
    for shards in [1usize, 2, 4] {
        let (eps, end) = noc_hotspot_edges_per_sec(cfg.clone(), 1, shards);
        match end_at_one {
            None => end_at_one = Some(end),
            Some(t0) => assert_eq!(
                t0, end,
                "{name}: simulated end time diverged at {shards} mesh shards"
            ),
        }
        println!(
            "# {name} mesh_shards={shards} throughput: {eps:.3e} edges/sec (sim end {} ps)",
            end.as_ps()
        );
        points.push((shards, eps));
    }
    points
}

/// Service-layer costs: cold vs cache-hit latency over the real HTTP
/// path, payload size, and the payload's JSON encode/decode wall time.
struct ServeCosts {
    cold_ms: f64,
    hit_ms: f64,
    payload_bytes: usize,
    encode_ms: f64,
    decode_ms: f64,
}

fn serve_costs() -> ServeCosts {
    use duet_serve::server::{ServeConfig, Server};
    let server = Server::start(ServeConfig::default()).expect("serve binds");
    let addr = server.addr();
    let body = br#"{"workload":"popcount","n":6,"seed":42}"#;

    let start = Instant::now();
    let cold =
        duet_serve::client::post_json(addr, "/v1/runs?wait=1", None, body).expect("cold request");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(cold.status, 200, "cold run failed");

    let start = Instant::now();
    let hit =
        duet_serve::client::post_json(addr, "/v1/runs?wait=1", None, body).expect("hit request");
    let hit_ms = start.elapsed().as_secs_f64() * 1e3;
    let hj = hit.json().expect("hit response parses");
    assert_eq!(
        hj.get("cache").and_then(duet_serve::json::Json::as_str),
        Some("hit"),
        "second submission must hit the cache"
    );
    let payload = hj.get("result").expect("hit carries result").to_bytes();
    server.shutdown();

    // Encode/decode cost of the payload itself (min over a few rounds).
    let (mut encode_ms, mut decode_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let start = Instant::now();
        let tree = duet_serve::json::parse(&payload).expect("payload parses");
        decode_ms = decode_ms.min(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let bytes = tree.to_bytes();
        encode_ms = encode_ms.min(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(bytes, payload, "payload must re-encode byte-identically");
    }
    println!(
        "# serve cold {cold_ms:.2} ms, cache hit {hit_ms:.2} ms ({:.0}x), \
         payload {} bytes, encode {encode_ms:.3} ms, decode {decode_ms:.3} ms",
        cold_ms / hit_ms.max(1e-9),
        payload.len()
    );
    ServeCosts {
        cold_ms,
        hit_ms,
        payload_bytes: payload.len(),
        encode_ms,
        decode_ms,
    }
}

fn main() -> std::io::Result<()> {
    // First non-flag argument (skipping flag values) is the output path.
    let mut out_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" || a == "--threads" || a == "--faults" {
            args.next();
        } else if !a.starts_with("--") && out_path.is_none() {
            out_path = Some(a);
        }
    }
    let out_path = out_path.unwrap_or_else(|| "BENCH_pr9.json".to_string());

    let fig9 = fig9_edges_per_sec();
    let stream = stream_stores_edges_per_sec();
    let hotspot_8 = noc_hotspot_sweep("noc_hotspot_8x8", &SystemConfig::mesh_8x8());
    let hotspot_16 = noc_hotspot_sweep("noc_hotspot_16x16", &SystemConfig::mesh_16x16());
    let mesh_8 = mesh_shard_sweep("noc_hotspot_8x8", &SystemConfig::mesh_8x8());
    let mesh_16 = mesh_shard_sweep("noc_hotspot_16x16", &SystemConfig::mesh_16x16());
    let snapshots = snapshot_costs_sweep();
    let serve = serve_costs();

    // The serial-vs-sharded mesh-tick cell: shards=1 vs shards=4 on the
    // 16×16 hotspot at one sim thread. On a single-CPU host the sharded
    // cell runs inline, so a positive overhead is the pure pass-split
    // cost; on a multi-core host it becomes a speedup (negative).
    let serial_eps = mesh_16[0].1;
    let sharded4_eps = mesh_16
        .iter()
        .find(|(s, _)| *s == 4)
        .map_or(serial_eps, |&(_, e)| e);
    let mesh_tick_overhead_pct = (serial_eps / sharded4_eps - 1.0) * 100.0;
    println!(
        "# mesh_tick serial {serial_eps:.3e} vs 4-shard {sharded4_eps:.3e} edges/sec \
         (overhead {mesh_tick_overhead_pct:+.1}%)"
    );

    // Hand-rolled JSON: two decimal places of mantissa are plenty for a
    // trajectory record, and no serde dependency is needed.
    let fmt_axis = |key: &str, points: &[(usize, f64)]| {
        let cells: Vec<String> = points
            .iter()
            .map(|(t, eps)| format!("\"{t}\": {eps:.3e}"))
            .collect();
        format!("\"{key}\": {{ {} }}", cells.join(", "))
    };
    let mut body = String::from("{\n  \"schema\": \"duet-bench-smoke-v5\",\n");
    body.push_str("  \"unit\": \"edges_per_sec\",\n  \"scenarios\": {\n");
    if let Some(f) = fig9 {
        body.push_str(&format!("    \"fig9_latency_sweep\": {f:.3e},\n"));
    }
    body.push_str(&format!(
        "    \"stream_stores_p4_coherence_heavy\": {stream:.3e},\n"
    ));
    body.push_str(&format!(
        "    \"noc_hotspot_8x8\": {{ {}, {} }},\n",
        fmt_axis("threads", &hotspot_8),
        fmt_axis("mesh_shards", &mesh_8)
    ));
    body.push_str(&format!(
        "    \"noc_hotspot_16x16\": {{ {}, {} }}\n  }},\n",
        fmt_axis("threads", &hotspot_16),
        fmt_axis("mesh_shards", &mesh_16)
    ));
    body.push_str(&format!(
        "  \"mesh_tick\": {{ \"serial_eps\": {serial_eps:.3e}, \
         \"sharded4_eps\": {sharded4_eps:.3e}, \
         \"inline_overhead_pct\": {mesh_tick_overhead_pct:.1} }},\n"
    ));
    body.push_str("  \"snapshot\": {\n");
    let cells: Vec<String> = snapshots
        .iter()
        .map(|(name, c)| {
            format!(
                "    \"{name}\": {{ \"snapshot_bytes\": {}, \"snapshot_ms\": {:.3}, \
                 \"restore_ms\": {:.3}, \"fork_ms\": {:.3} }}",
                c.snapshot_bytes, c.snapshot_ms, c.restore_ms, c.fork_ms
            )
        })
        .collect();
    body.push_str(&cells.join(",\n"));
    body.push_str("\n  },\n");
    body.push_str(&format!(
        "  \"serve\": {{ \"cold_ms\": {:.3}, \"cache_hit_ms\": {:.3}, \
         \"payload_bytes\": {}, \"encode_ms\": {:.3}, \"decode_ms\": {:.3} }}\n}}\n",
        serve.cold_ms, serve.hit_ms, serve.payload_bytes, serve.encode_ms, serve.decode_ms
    ));
    // A full disk or bad path is a clean error for CI to show, not a panic.
    std::fs::write(&out_path, &body).map_err(|e| {
        std::io::Error::new(e.kind(), format!("writing bench json to {out_path}: {e}"))
    })?;
    println!("# wrote {out_path}");

    duet_bench::maybe_write_trace("bench_smoke");
    duet_bench::maybe_run_faulted("bench_smoke");
    Ok(())
}
