//! Regenerates **Table II**: maximum clock frequency and eFPGA resource
//! utilization of the seven soft accelerators, by implementing each
//! design's netlist summary on the `k6_frac_N10_frac_chain_mem32K_40nm`
//! fabric model.
//!
//! Run: `cargo run --release -p duet-bench --bin table2`

use duet_fpga::area::base_tile_area_mm2;
use duet_fpga::fabric::FabricSpec;
use duet_fpga::ports::SoftAccelerator;

fn main() {
    let fabric = FabricSpec::k6_frac_n10_mem32k();
    // Instantiate each design to pull its netlist.
    let events = std::rc::Rc::new(std::cell::RefCell::new(
        duet_workloads::synthetic::SpEvents::default(),
    ));
    let designs: Vec<(Box<dyn SoftAccelerator>, f64, f64, f64, f64)> = vec![
        // (design, paper MHz, paper norm area, paper CLB util, paper BRAM util)
        (
            Box::new(duet_workloads::tangent::TangentAccel::new(true)),
            282.0,
            0.47,
            0.84,
            0.0,
        ),
        (
            Box::new(duet_workloads::popcount::PopcountAccel::new(true)),
            189.0,
            2.77,
            0.83,
            0.56,
        ),
        (
            Box::new(duet_workloads::sort::SortAccel::new(true, 32)),
            228.0,
            6.29,
            0.30,
            0.76,
        ),
        (
            Box::new(duet_workloads::sort::SortAccel::new(true, 64)),
            234.0,
            8.10,
            0.27,
            0.92,
        ),
        (
            Box::new(duet_workloads::sort::SortAccel::new(true, 128)),
            228.0,
            10.27,
            0.27,
            0.92,
        ),
        (
            Box::new(duet_workloads::dijkstra::DijkstraAccel::new(
                true,
                true,
                duet_workloads::dijkstra::DijkstraLayout::new(),
            )),
            127.0,
            1.94,
            0.96,
            0.31,
        ),
        (
            Box::new(duet_workloads::barnes_hut::BhAccel::new(true, 4, 0, 0)),
            85.0,
            14.22,
            0.99,
            0.05,
        ),
        (
            Box::new(duet_workloads::bfs::FrontierQueues::new(true, 4, 0)),
            208.0,
            1.24,
            0.61,
            0.75,
        ),
        (
            Box::new(duet_workloads::pdes::TaskScheduler::new(true, 4, &[])),
            126.0,
            2.77,
            0.47,
            0.56,
        ),
        (
            Box::new(duet_workloads::synthetic::Scratchpad::new(true, events)),
            0.0,
            0.0,
            0.0,
            0.0,
        ),
    ];
    println!("# Table II: Clock Frequency and Area of Soft Accelerators");
    println!("# (model vs paper; area normalized to 1x Ariane + 1x P-Mesh Socket)");
    println!(
        "{:<14} {:>9} {:>9} | {:>9} {:>9} | {:>8} {:>8} | {:>8} {:>8}",
        "design", "MHz", "paper", "area", "paper", "CLB", "paper", "BRAM", "paper"
    );
    for (d, p_mhz, p_area, p_clb, p_bram) in &designs {
        let n = d.netlist();
        let r = fabric.implement(&n);
        let norm_area = r.area_mm2 / base_tile_area_mm2();
        println!(
            "{:<14} {:>9.0} {:>9.0} | {:>9.2} {:>9.2} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            n.name, r.fmax_mhz, p_mhz, norm_area, p_area, r.clb_util, p_clb, r.bram_util, p_bram
        );
    }
    println!();
    println!("# Paper note: accelerators run at 8%-28% of the 1 GHz processor clock.");
}
