//! Regenerates **Table II**: maximum clock frequency and eFPGA resource
//! utilization of the seven soft accelerators, by implementing each
//! design's netlist summary on the `k6_frac_N10_frac_chain_mem32K_40nm`
//! fabric model.
//!
//! Run: `cargo run --release -p duet-bench --bin table2 [--threads N]`

use duet_bench::{parallel_map, Throughput};
use duet_fpga::area::base_tile_area_mm2;
use duet_fpga::fabric::{FabricSpec, NetlistSummary};
use duet_fpga::ports::SoftAccelerator;

/// Table II designs; workers instantiate each one (some hold `Rc` state,
/// so construction happens inside the worker, not in a shared list).
#[derive(Clone, Copy)]
enum Design {
    Tangent,
    Popcount,
    Sort(u64),
    Dijkstra,
    BarnesHut,
    Bfs,
    Pdes,
    Scratchpad,
}

impl Design {
    fn netlist(&self) -> NetlistSummary {
        match *self {
            Design::Tangent => duet_workloads::tangent::TangentAccel::new(true).netlist(),
            Design::Popcount => duet_workloads::popcount::PopcountAccel::new(true).netlist(),
            Design::Sort(n) => duet_workloads::sort::SortAccel::new(true, n).netlist(),
            Design::Dijkstra => duet_workloads::dijkstra::DijkstraAccel::new(
                true,
                true,
                duet_workloads::dijkstra::DijkstraLayout::new(),
            )
            .netlist(),
            Design::BarnesHut => duet_workloads::barnes_hut::BhAccel::new(true, 4, 0, 0).netlist(),
            Design::Bfs => duet_workloads::bfs::FrontierQueues::new(true, 4, 0).netlist(),
            Design::Pdes => duet_workloads::pdes::TaskScheduler::new(true, 4, &[]).netlist(),
            Design::Scratchpad => {
                let events = std::rc::Rc::new(std::cell::RefCell::new(
                    duet_workloads::synthetic::SpEvents::default(),
                ));
                duet_workloads::synthetic::Scratchpad::new(true, events).netlist()
            }
        }
    }
}

fn main() {
    let tp = Throughput::start();
    // (design, paper MHz, paper norm area, paper CLB util, paper BRAM util)
    let designs: [(Design, f64, f64, f64, f64); 10] = [
        (Design::Tangent, 282.0, 0.47, 0.84, 0.0),
        (Design::Popcount, 189.0, 2.77, 0.83, 0.56),
        (Design::Sort(32), 228.0, 6.29, 0.30, 0.76),
        (Design::Sort(64), 234.0, 8.10, 0.27, 0.92),
        (Design::Sort(128), 228.0, 10.27, 0.27, 0.92),
        (Design::Dijkstra, 127.0, 1.94, 0.96, 0.31),
        (Design::BarnesHut, 85.0, 14.22, 0.99, 0.05),
        (Design::Bfs, 208.0, 1.24, 0.61, 0.75),
        (Design::Pdes, 126.0, 2.77, 0.47, 0.56),
        (Design::Scratchpad, 0.0, 0.0, 0.0, 0.0),
    ];
    let implemented = parallel_map(designs.to_vec(), |(d, p_mhz, p_area, p_clb, p_bram)| {
        let n = d.netlist();
        let r = FabricSpec::k6_frac_n10_mem32k().implement(&n);
        (n, r, p_mhz, p_area, p_clb, p_bram)
    });

    println!("# Table II: Clock Frequency and Area of Soft Accelerators");
    println!("# (model vs paper; area normalized to 1x Ariane + 1x P-Mesh Socket)");
    println!(
        "{:<14} {:>9} {:>9} | {:>9} {:>9} | {:>8} {:>8} | {:>8} {:>8}",
        "design", "MHz", "paper", "area", "paper", "CLB", "paper", "BRAM", "paper"
    );
    for (n, r, p_mhz, p_area, p_clb, p_bram) in &implemented {
        let norm_area = r.area_mm2 / base_tile_area_mm2();
        println!(
            "{:<14} {:>9.0} {:>9.0} | {:>9.2} {:>9.2} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            n.name, r.fmax_mhz, p_mhz, norm_area, p_area, r.clb_util, p_clb, r.bram_util, p_bram
        );
    }
    println!();
    println!("# Paper note: accelerators run at 8%-28% of the 1 GHz processor clock.");
    duet_bench::maybe_write_trace("table2");
    duet_bench::maybe_run_faulted("table2");
    tp.report("table2");
}
