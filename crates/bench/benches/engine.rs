//! Microbenchmarks of the simulator engine itself: how fast the
//! substrates simulate (host-side performance, not simulated-system
//! performance).
//!
//! Hand-rolled harness (`harness = false`): each scenario is warmed up,
//! then timed over enough repetitions to smooth noise, reporting ns/iter
//! plus per-element and engine-throughput rates.
//!
//! Run: `cargo bench -p duet-bench`
//! Filter by substring: `cargo bench -p duet-bench -- mesh`

use duet_mem::priv_cache::CacheConfig;
use duet_mem::testkit::ProtocolHarness;
use duet_mem::types::{MemReq, Width};
use duet_noc::{Mesh, MeshConfig, Message, VNet};
use duet_sim::{AsyncFifo, Clock, Time};
use duet_system::{System, SystemConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times `f` (returning an element count per iteration) and prints one
/// result line. Warms up ~3 iterations, then runs until either 20
/// measured iterations or ~1s of wall time has accumulated.
fn bench(filter: &Option<String>, name: &str, mut f: impl FnMut() -> u64) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    for _ in 0..3 {
        black_box(f());
    }
    let mut iters = 0u64;
    let mut elems = 0u64;
    let budget = Duration::from_secs(1);
    let start = Instant::now();
    while iters < 20 || start.elapsed() < budget / 4 {
        elems += black_box(f());
        iters += 1;
        if start.elapsed() >= budget {
            break;
        }
    }
    let total = start.elapsed();
    let per_iter = total.as_nanos() as f64 / iters as f64;
    let per_elem = if elems > 0 {
        total.as_nanos() as f64 / elems as f64
    } else {
        0.0
    };
    println!("{name:<44} {per_iter:>14.0} ns/iter {per_elem:>10.1} ns/elem   ({iters} iters)");
}

fn main() {
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .filter(|a| a != "bench");
    println!(
        "{:<44} {:>22} {:>18}",
        "# engine microbenchmarks", "time", "per element"
    );

    // --- async FIFO ---
    bench(&filter, "async_fifo/push_pop_1000", || {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut f: AsyncFifo<u64> = AsyncFifo::new(16, 2, fast, slow);
        let mut t = Time::ZERO;
        let mut got = 0u64;
        let mut sent = 0u64;
        while got < 1000 {
            t += Time::from_ps(1000);
            if sent < 1000 && f.can_push(t) {
                f.push(t, sent).unwrap();
                sent += 1;
            }
            while f.pop(t).is_some() {
                got += 1;
            }
        }
        got
    });

    // --- mesh: idle (the active-set fast path), light, saturated ---
    let mesh_cfg = MeshConfig::new(4, 4, Clock::ghz1());
    bench(&filter, "noc/mesh4x4_idle_10k_ticks", || {
        // An idle mesh must tick in O(1): no router scan at all.
        let mut mesh: Mesh<u32> = Mesh::new(mesh_cfg);
        let mut t = Time::ZERO;
        for _ in 0..10_000 {
            t += Time::from_ps(1000);
            mesh.tick(t);
        }
        10_000
    });
    bench(&filter, "noc/mesh4x4_light_one_flow_2k_ticks", || {
        // One long-lived flow: only routers on the path should pay.
        let mut mesh: Mesh<u32> = Mesh::new(mesh_cfg);
        let mut t = Time::ZERO;
        let mut delivered = 0u64;
        let mut injected = 0u32;
        for _ in 0..2_000 {
            t += Time::from_ps(1000);
            if injected < 500 && mesh.can_inject(0, VNet::Req) {
                mesh.inject(t, Message::new(0, 15, VNet::Req, 2, injected))
                    .unwrap();
                injected += 1;
            }
            mesh.tick(t);
            while mesh.eject(15, VNet::Req).is_some() {
                delivered += 1;
            }
        }
        delivered
    });
    bench(&filter, "noc/mesh4x4_hotspot_1000_msgs", || {
        // Saturated hotspot: every router active, worst case for the set.
        let mut mesh: Mesh<u32> = Mesh::new(mesh_cfg);
        let mut t = Time::ZERO;
        let mut delivered = 0u64;
        let mut injected = 0u32;
        while delivered < 1000 {
            t += Time::from_ps(1000);
            for src in 0..16 {
                if src != 5 && injected < 1000 && mesh.can_inject(src, VNet::Req) {
                    mesh.inject(t, Message::new(src, 5, VNet::Req, 2, injected))
                        .unwrap();
                    injected += 1;
                }
            }
            mesh.tick(t);
            while mesh.eject(5, VNet::Req).is_some() {
                delivered += 1;
            }
        }
        delivered
    });

    // --- mesh tick: the sharded pass split, serial vs 4-shard inline ---
    // The same saturated-hotspot traffic on a 16x16 grid, ticked through
    // `Mesh::tick` at different shard counts. One shard is the serial
    // mesh tick (with the hoisted per-router route cache and the
    // start-of-tick fullness snapshot); four shards run the identical
    // schedule inline with the boundary-lane merge, measuring the pure
    // pass-split overhead without thread effects. Results are
    // byte-identical across cells by construction.
    let big_cfg = MeshConfig::new(16, 16, Clock::ghz1());
    for shards in [1usize, 4] {
        let name = if shards == 1 {
            "noc/mesh_tick_16x16_hotspot_1shard"
        } else {
            "noc/mesh_tick_16x16_hotspot_4shard"
        };
        bench(&filter, name, || {
            let mut mesh: Mesh<u32> = Mesh::new(big_cfg);
            mesh.set_shards(shards);
            let mut t = Time::ZERO;
            let mut delivered = 0u64;
            let mut injected = 0u32;
            while delivered < 2000 {
                t += Time::from_ps(1000);
                for src in (0..256).step_by(5) {
                    if src != 136 && injected < 2000 && mesh.can_inject(src, VNet::Req) {
                        mesh.inject(t, Message::new(src, 136, VNet::Req, 2, injected))
                            .unwrap();
                        injected += 1;
                    }
                }
                mesh.tick(t);
                while mesh.eject(136, VNet::Req).is_some() {
                    delivered += 1;
                }
            }
            delivered
        });
    }

    // --- coherence ---
    bench(&filter, "coherence/two_cache_pingpong_200_writes", || {
        let cfg = CacheConfig::dolly_l2(Clock::ghz1());
        let mut h = ProtocolHarness::new(2, 2, 2, cfg);
        for k in 0..200u64 {
            let cache = (k % 2) as usize;
            h.request(cache, MemReq::store(k, 0x1000, Width::B8, k));
            h.run_until_resp(cache, 2000);
        }
        200
    });

    // --- full system ---
    let mut asm = duet_cpu::asm::Asm::new();
    asm.label("main");
    asm.li(duet_cpu::isa::regs::T[0], 0x1000);
    asm.label("loop");
    asm.ld(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
    asm.addi(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[1], 1);
    asm.sd(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
    asm.j("loop");
    let busy = Arc::new(asm.assemble().unwrap());

    bench(&filter, "system/p4m1_10us_busy_step_edge", || {
        // Host cost of exhaustively stepping 10 us of a busy 4-core Dolly
        // instance, edge by edge (the step_edge micro-path).
        let mut sys = System::new(SystemConfig::dolly(4, 1, 100.0)).expect("valid config");
        for core in 0..4 {
            sys.load_program(core, busy.clone(), "main");
        }
        let deadline = Time::from_us(10);
        let mut edges = 0u64;
        while sys.now() < deadline {
            sys.step_edge();
            edges += 1;
        }
        edges
    });

    // Coherence-heavy: four cores stream stores over a shared 64 KB
    // region (4 K lines, far beyond the 8 KB L2), so nearly every store is
    // a miss with an eviction writeback — the directory maps fill with
    // thousands of lines and every edge moves GetM / Data / Inv / PutM
    // traffic. This is the hot-path state-storage scenario: wall time is
    // dominated by directory/MSHR/backing-store lookups.
    let mut st = duet_cpu::asm::Asm::new();
    st.label("main");
    st.li(duet_cpu::isa::regs::T[0], 0x10_0000);
    st.li(duet_cpu::isa::regs::T[2], 0x10_0000 + 0x1_0000);
    st.label("loop");
    st.sd(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
    st.addi(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[0], 16);
    st.blt(duet_cpu::isa::regs::T[0], duet_cpu::isa::regs::T[2], "loop");
    st.halt();
    let stream = Arc::new(st.assemble().unwrap());
    bench(&filter, "system/p4_stream_stores_4k_lines", || {
        let mut sys = System::new(SystemConfig::proc_only(4)).expect("valid config");
        for core in 0..4 {
            sys.load_program(core, stream.clone(), "main");
        }
        sys.run_until_halt(Time::from_us(4_000))
            .unwrap_or_else(|e| panic!("{e}"));
        sys.quiesce(Time::from_us(5_000))
            .unwrap_or_else(|e| panic!("{e}"));
        let s = sys.stats();
        s.fast_edges + s.slow_edges
    });

    bench(&filter, "system/poke_peek_1mb_image", || {
        // Memory-image initialization: the harness-side hot path every fig
        // binary pays before simulating (poke_bytes/peek_bytes_raw walk the
        // shard backing stores line by line).
        let mut sys = System::new(SystemConfig::proc_only(2)).expect("valid config");
        let buf = vec![0xA5u8; 1 << 20];
        sys.poke_bytes(0x10_0000, &buf);
        let back = sys.peek_bytes_raw(0x10_0000, 1 << 20);
        black_box(back.len() as u64)
    });

    // Idle-heavy: core 0 performs blocking MMIO round trips to a 20 MHz
    // scratchpad (write the echo register, block reading the result queue)
    // while three cores sit halted — the latency-bound case event-horizon
    // scheduling targets: almost every fast edge falls inside a CDC wait.
    use duet_core::control_hub::RegMode;
    use duet_workloads::synthetic::{sp_reg, Scratchpad, SpEvents};
    let idle_cfg = SystemConfig::dolly(4, 1, 20.0);
    let mut one = duet_cpu::asm::Asm::new();
    one.label("main");
    one.li(
        duet_cpu::isa::regs::T[0],
        (idle_cfg.mmio_base + (sp_reg::DATA as u64) * 8) as i64,
    );
    one.li(
        duet_cpu::isa::regs::T[6],
        (idle_cfg.mmio_base + (sp_reg::RESULT as u64) * 8) as i64,
    );
    one.li(duet_cpu::isa::regs::T[1], 0);
    one.label("loop");
    one.li(duet_cpu::isa::regs::T[2], 0x11);
    one.sd(duet_cpu::isa::regs::T[2], duet_cpu::isa::regs::T[0], 0); // DATA
    one.ld(duet_cpu::isa::regs::T[3], duet_cpu::isa::regs::T[6], 0); // RESULT (blocks)
    one.addi(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[1], 1);
    one.li(duet_cpu::isa::regs::T[4], 40);
    one.blt(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[4], "loop");
    one.halt();
    let mmio = Arc::new(one.assemble().unwrap());
    for skip in [false, true] {
        let label = if skip {
            "system/p4m1_idle_heavy_skip_on"
        } else {
            "system/p4m1_idle_heavy_skip_off"
        };
        bench(&filter, label, || {
            let mut sys = System::new(idle_cfg.clone()).expect("valid config");
            sys.set_edge_skipping(skip);
            for r in [sp_reg::CMD, sp_reg::RESULT, sp_reg::DATA] {
                sys.set_reg_mode(r, RegMode::Normal);
            }
            let events = std::rc::Rc::new(std::cell::RefCell::new(SpEvents::default()));
            sys.attach_accelerator(Box::new(Scratchpad::new(false, events)));
            sys.load_program(0, mmio.clone(), "main");
            sys.run_until_halt(Time::from_us(200))
                .unwrap_or_else(|e| panic!("{e}"));
            let s = sys.stats();
            s.fast_edges + s.slow_edges
        });
    }
}
