//! Criterion microbenchmarks of the simulator engine itself: how fast the
//! substrates simulate (host-side performance, not simulated-system
//! performance).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use duet_mem::priv_cache::CacheConfig;
use duet_mem::testkit::ProtocolHarness;
use duet_mem::types::{MemReq, Width};
use duet_noc::{Mesh, MeshConfig, Message, VNet};
use duet_sim::{AsyncFifo, Clock, Time};
use duet_system::{System, SystemConfig};
use std::sync::Arc;

fn bench_async_fifo(c: &mut Criterion) {
    let mut g = c.benchmark_group("async_fifo");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("push_pop_1000", |b| {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        b.iter(|| {
            let mut f: AsyncFifo<u64> = AsyncFifo::new(16, 2, fast, slow);
            let mut t = Time::ZERO;
            let mut got = 0u64;
            let mut sent = 0u64;
            while got < 1000 {
                t = t + Time::from_ps(1000);
                if sent < 1000 && f.can_push(t) {
                    f.push(t, sent).unwrap();
                    sent += 1;
                }
                while let Some(_) = f.pop(t) {
                    got += 1;
                }
            }
            got
        });
    });
    g.finish();
}

fn bench_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("mesh4x4_hotspot_1000_msgs", |b| {
        let cfg = MeshConfig::new(4, 4, Clock::ghz1());
        b.iter(|| {
            let mut mesh: Mesh<u32> = Mesh::new(cfg);
            let mut t = Time::ZERO;
            let mut delivered = 0u64;
            let mut injected = 0u32;
            while delivered < 1000 {
                t = t + Time::from_ps(1000);
                for src in 0..16 {
                    if src != 5 && injected < 1000 && mesh.can_inject(src, VNet::Req) {
                        mesh.inject(t, Message::new(src, 5, VNet::Req, 2, injected))
                            .unwrap();
                        injected += 1;
                    }
                }
                mesh.tick(t);
                while mesh.eject(5, VNet::Req).is_some() {
                    delivered += 1;
                }
            }
            delivered
        });
    });
    g.finish();
}

fn bench_coherence(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence");
    g.throughput(Throughput::Elements(200));
    g.bench_function("two_cache_pingpong_200_writes", |b| {
        b.iter(|| {
            let cfg = CacheConfig::dolly_l2(Clock::ghz1());
            let mut h = ProtocolHarness::new(2, 2, 2, cfg);
            for k in 0..200u64 {
                let cache = (k % 2) as usize;
                h.request(cache, MemReq::store(k, 0x1000, Width::B8, k));
                h.run_until_resp(cache, 2000);
            }
            h.now()
        });
    });
    g.finish();
}

fn bench_full_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    g.sample_size(10);
    g.bench_function("p4m1_10us_sim", |b| {
        // Host cost of simulating 10 us of a busy 4-core Dolly instance.
        let mut asm = duet_cpu::asm::Asm::new();
        asm.label("main");
        asm.li(duet_cpu::isa::regs::T[0], 0x1000);
        asm.label("loop");
        asm.ld(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
        asm.addi(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[1], 1);
        asm.sd(duet_cpu::isa::regs::T[1], duet_cpu::isa::regs::T[0], 0);
        asm.j("loop");
        let prog = Arc::new(asm.assemble().unwrap());
        b.iter(|| {
            let mut sys = System::new(SystemConfig::dolly(4, 1, 100.0));
            for core in 0..4 {
                sys.load_program(core, prog.clone(), "main");
            }
            let deadline = Time::from_us(10);
            while sys.now() < deadline {
                sys.step_edge();
            }
            sys.now()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_async_fifo,
    bench_mesh,
    bench_coherence,
    bench_full_system
);
criterion_main!(benches);
