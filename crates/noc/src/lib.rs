#![warn(missing_docs)]
//! # duet-noc
//!
//! A cycle-level 2D-mesh network-on-chip modelled after the OpenPiton P-Mesh
//! NoC that Dolly (Sec. IV of the paper) is built on:
//!
//! * three independent **virtual networks** (request / forward / response) so
//!   the directory coherence protocol is deadlock-free,
//! * deterministic **XY routing**, which — combined with FIFO buffering and
//!   round-robin arbitration that never reorders within a queue — gives the
//!   **point-to-point ordering** guarantee the paper relies on ("The NoC
//!   offers point-to-point ordering of message delivery"),
//! * 64-bit flits with wormhole-style link serialization (a message of *n*
//!   flits occupies each link for *n* cycles),
//! * bounded router input buffers providing backpressure.
//!
//! The mesh runs entirely in the fast (system) clock domain; eFPGA traffic
//! enters it only through the Duet Adapter in `duet-core`.
//!
//! # Example
//!
//! ```
//! use duet_noc::{Mesh, MeshConfig, Message, VNet};
//! use duet_sim::{Clock, Time};
//!
//! let cfg = MeshConfig::new(2, 2, Clock::ghz1());
//! let mut mesh: Mesh<&'static str> = Mesh::new(cfg);
//! let t0 = Time::from_ps(1000);
//! mesh.inject(t0, Message::new(0, 3, VNet::Req, 1, "hello")).unwrap();
//! let mut t = t0;
//! let msg = loop {
//!     t = t + Time::from_ps(1000);
//!     mesh.tick(t);
//!     if let Some(m) = mesh.eject(3, VNet::Req) { break m; }
//! };
//! assert_eq!(msg.payload, "hello");
//! ```

use std::collections::{BTreeSet, VecDeque};

use duet_sim::{
    merge_min, partition_balanced, Clock, ClockDomain, Component, Link, LinkReport, LoadEwma, Pack,
    PushError, Snap, SnapError, SnapReader, SnapWriter, Time,
};
use duet_trace::{pack_hop, pack_noc, EventKind, Tracer};

/// Identifies a mesh node (tile). Row-major: `id = y * width + x`.
pub type NodeId = usize;

/// The three virtual networks of the coherence protocol.
///
/// Keeping requests, forwarded requests, and responses on independently
/// buffered networks is what makes the directory protocol deadlock-free
/// (responses can always sink regardless of request backlog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VNet {
    /// Requests from private caches to directory homes (GetS/GetM/Put...).
    Req = 0,
    /// Directory-to-cache forwarded requests and invalidations.
    Fwd = 1,
    /// Data and acknowledgement responses.
    Resp = 2,
}

/// Number of virtual networks.
pub const VNET_COUNT: usize = 3;

impl VNet {
    /// All virtual networks, in priority order (Resp first — responses must
    /// drain to guarantee forward progress).
    pub const ALL: [VNet; VNET_COUNT] = [VNet::Resp, VNet::Fwd, VNet::Req];

    /// Index for array storage.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A message travelling on the mesh.
#[derive(Clone, Debug)]
pub struct Message<P> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network this message travels on.
    pub vnet: VNet,
    /// Size in 64-bit flits (≥ 1; a 16-byte cacheline plus header is 3).
    pub flits: u32,
    /// When the message entered the network (set by [`Mesh::inject`]).
    pub injected_at: Time,
    /// Mesh-wide transaction id (set by [`Mesh::inject`] from a
    /// deterministic counter, tracing on or off) — lets a trace follow one
    /// message across hops.
    pub trace_id: u64,
    /// Protocol payload.
    pub payload: P,
}

impl<P> Message<P> {
    /// Creates a message; `injected_at` is filled in by [`Mesh::inject`].
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn new(src: NodeId, dst: NodeId, vnet: VNet, flits: u32, payload: P) -> Self {
        assert!(flits > 0, "a message is at least one flit");
        Message {
            src,
            dst,
            vnet,
            flits,
            injected_at: Time::ZERO,
            trace_id: 0,
            payload,
        }
    }
}

/// Router ports. `Local` is the tile-side injection/ejection port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Port {
    North = 0,
    South = 1,
    East = 2,
    West = 3,
    Local = 4,
}

const PORT_COUNT: usize = 5;
const PORTS: [Port; PORT_COUNT] = [
    Port::North,
    Port::South,
    Port::East,
    Port::West,
    Port::Local,
];

impl Port {
    fn label(self) -> &'static str {
        match self {
            Port::North => "north",
            Port::South => "south",
            Port::East => "east",
            Port::West => "west",
            Port::Local => "local",
        }
    }
}

const VNET_LABELS: [&str; VNET_COUNT] = ["req", "fwd", "resp"];

/// Mesh configuration.
#[derive(Clone, Copy, Debug)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Clock driving the routers (the fast/system clock).
    pub clock: Clock,
    /// Input-buffer depth in messages, per (port, vnet).
    pub buf_depth: usize,
    /// Cycles for one hop (router pipeline + link traversal).
    pub hop_cycles: u32,
}

impl MeshConfig {
    /// Creates a configuration with Dolly-like defaults: 2-deep buffers and
    /// single-cycle hops at the given clock.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, clock: Clock) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        MeshConfig {
            width,
            height,
            clock,
            buf_depth: 2,
            hop_cycles: 1,
        }
    }

    /// Sets the input-buffer depth.
    pub fn with_buf_depth(mut self, depth: usize) -> Self {
        self.buf_depth = depth;
        self
    }

    /// Sets the per-hop latency in cycles.
    pub fn with_hop_cycles(mut self, cycles: u32) -> Self {
        self.hop_cycles = cycles;
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinates of a node id.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        (id % self.width, id / self.width)
    }

    /// Node id of coordinates.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        y * self.width + x
    }

    /// XY routing: returns the output port at router `at` toward `dst`.
    pub(crate) fn route(&self, at: NodeId, dst: NodeId) -> Port {
        let (ax, ay) = self.coords(at);
        let (dx, dy) = self.coords(dst);
        if dx > ax {
            Port::East
        } else if dx < ax {
            Port::West
        } else if dy > ay {
            Port::South
        } else if dy < ay {
            Port::North
        } else {
            Port::Local
        }
    }

    /// Neighbor of `at` through output port `p`, and the input port the
    /// message arrives on there.
    pub(crate) fn neighbor(&self, at: NodeId, p: Port) -> (NodeId, Port) {
        let (x, y) = self.coords(at);
        match p {
            Port::North => (self.node_at(x, y - 1), Port::South),
            Port::South => (self.node_at(x, y + 1), Port::North),
            Port::East => (self.node_at(x + 1, y), Port::West),
            Port::West => (self.node_at(x - 1, y), Port::East),
            Port::Local => unreachable!("local port has no neighbor"),
        }
    }
}

#[derive(Clone)]
struct Router<P> {
    /// Input links, indexed `[port][vnet]`: one bounded synchronous link per
    /// (port, vnet) pair, modelling the per-vnet input buffers of an
    /// OpenPiton-style router port.
    inputs: Vec<Vec<Link<Message<P>>>>,
    /// Time until which each output port's link is serializing a message.
    out_busy: [Time; PORT_COUNT],
    /// Round-robin pointer per output port over (input port, vnet) pairs.
    rr: [usize; PORT_COUNT],
    /// Occupancy bitmask over the 15 (port, vnet) input queues (bit
    /// `port * VNET_COUNT + vnet`). Arbitration probes only set bits — an
    /// empty queue can never win, so skipping it is bit-exact — turning
    /// the 5x15 scan into 5 x popcount.
    occ: u16,
}

/// Aggregate traffic statistics for a mesh.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeshStats {
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Sum over delivered messages of (eject − inject) time.
    pub total_latency: Time,
    /// Messages injected.
    pub injected: u64,
}

impl MeshStats {
    /// Mean in-network latency per delivered message.
    pub fn mean_latency(&self) -> Time {
        self.total_latency
            .as_ps()
            .checked_div(self.delivered)
            .map_or(Time::ZERO, Time::from_ps)
    }
}

/// A 2D-mesh network-on-chip. See the crate-level docs for the model.
#[derive(Clone)]
pub struct Mesh<P> {
    cfg: MeshConfig,
    routers: Vec<Router<P>>,
    eject: Vec<[VecDeque<Message<P>>; VNET_COUNT]>,
    stats: MeshStats,
    /// Worklist of routers with at least one buffered input message. An idle
    /// router is a provable no-op in [`tick`](Mesh::tick) (round-robin
    /// pointers only move when a message is chosen, `out_busy` is only
    /// compared against `now`), so ticking only this set is bit-identical to
    /// scanning every router. Kept sorted so iteration order matches the
    /// original ascending scan.
    active: BTreeSet<NodeId>,
    /// Scratch buffer for the per-tick snapshot of `active` (avoids a fresh
    /// allocation every tick).
    scratch: Vec<NodeId>,
    /// Total messages sitting in ejection queues (all nodes, all vnets).
    eject_pending: usize,
    /// Nodes with at least one message in an ejection queue, kept sorted so
    /// draining them in worklist order matches the ascending all-nodes scan.
    eject_active: BTreeSet<NodeId>,
    /// Monotone transaction-id counter, stamped onto every injected
    /// message whether or not tracing is on (so enabling tracing never
    /// perturbs state).
    trace_seq: u64,
    /// Trace handle (disabled unless the owning system enables tracing).
    tracer: Tracer,
    /// Requested shard count for the tick pass (host-side; never affects
    /// results — see [`set_shards`](Mesh::set_shards)).
    shards_target: usize,
    /// Current contiguous router ranges, one per shard. Rebuilt lazily
    /// when `plan_dirty` (shard-count change or a load-EWMA fold).
    plan: Vec<std::ops::Range<usize>>,
    /// Whether `plan` must be rebuilt before the next tick.
    plan_dirty: bool,
    /// Start-of-tick fullness bitmask per node over the 15 (port, vnet)
    /// input queues, recomputed in `prepare_tick` for every node a forward
    /// could probe this tick. Forwards test *this* snapshot instead of the
    /// live links (credit-based backpressure), which is what makes the
    /// arbitration outcome independent of shard execution order.
    full_masks: Vec<u16>,
    /// Nodes whose `full_masks` entry is non-zero (zeroed next tick).
    masked: Vec<NodeId>,
    /// Per-shard deferred side effects, replayed by `finish_tick`.
    lanes: Vec<MeshTickLane<P>>,
    /// Per-node pop counters since the last EWMA fold (rebalancer input).
    work_accum: Vec<u64>,
    /// Folded per-node load, driving the adaptive repartition. Host-side:
    /// not serialized, never observable in results.
    ewma: LoadEwma,
}

/// Deferred side effects of one shard's portion of a mesh tick: flits
/// leaving the shard's routers (toward any router — intra-shard moves are
/// deferred too, so link statistics are identical at every shard count),
/// local ejections, routers that drained, and trace events. Replayed by
/// [`Mesh::finish_tick`] in ascending shard order, which equals serial
/// router order because shards are contiguous ascending ranges.
struct MeshTickLane<P> {
    /// `(dst node, input port, vnet, message)` for every forwarded flit.
    forwards: Vec<(NodeId, u8, u8, Message<P>)>,
    /// `(node, vnet, message)` for every local ejection.
    ejects: Vec<(NodeId, u8, Message<P>)>,
    /// Routers whose input queues fully drained this tick.
    deactivated: Vec<NodeId>,
    /// `(timestamp ps, kind, a, b)` trace events in emission order.
    events: Vec<(u64, EventKind, u64, u64)>,
}

impl<P> Default for MeshTickLane<P> {
    fn default() -> Self {
        MeshTickLane {
            forwards: Vec::new(),
            ejects: Vec::new(),
            deactivated: Vec::new(),
            events: Vec::new(),
        }
    }
}

impl<P: Clone> Clone for MeshTickLane<P> {
    fn clone(&self) -> Self {
        MeshTickLane {
            forwards: self.forwards.clone(),
            ejects: self.ejects.clone(),
            deactivated: self.deactivated.clone(),
            events: self.events.clone(),
        }
    }
}

impl<P> MeshTickLane<P> {
    fn is_empty(&self) -> bool {
        self.forwards.is_empty()
            && self.ejects.is_empty()
            && self.deactivated.is_empty()
            && self.events.is_empty()
    }
}

impl<P> Mesh<P> {
    /// Builds an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        let hop_latency = cfg.clock.period().mul(u64::from(cfg.hop_cycles));
        let routers = (0..cfg.nodes())
            .map(|_| Router {
                inputs: (0..PORT_COUNT)
                    .map(|_| {
                        (0..VNET_COUNT)
                            .map(|_| Link::sync(cfg.buf_depth, hop_latency))
                            .collect()
                    })
                    .collect(),
                out_busy: [Time::ZERO; PORT_COUNT],
                rr: [0; PORT_COUNT],
                occ: 0,
            })
            .collect();
        let eject = (0..cfg.nodes())
            .map(|_| [VecDeque::new(), VecDeque::new(), VecDeque::new()])
            .collect();
        let nodes = cfg.nodes();
        Mesh {
            cfg,
            routers,
            eject,
            stats: MeshStats::default(),
            active: BTreeSet::new(),
            scratch: Vec::new(),
            eject_pending: 0,
            eject_active: BTreeSet::new(),
            trace_seq: 0,
            tracer: Tracer::disabled(),
            shards_target: 1,
            // One full-range shard: the serial tick as the degenerate plan.
            #[allow(clippy::single_range_in_vec_init)]
            plan: vec![0..nodes],
            plan_dirty: false,
            full_masks: vec![0; nodes],
            masked: Vec::new(),
            lanes: vec![MeshTickLane::default()],
            work_accum: vec![0; nodes],
            ewma: LoadEwma::new(nodes),
        }
    }

    /// Sets the number of contiguous router shards the tick pass splits
    /// into (clamped to `[1, nodes]`). Purely a host-side throughput knob:
    /// the shard plan never influences simulated results — the per-shard
    /// lanes replay in ascending shard order, which equals the serial
    /// router order at any count. The actual boundaries adapt to observed
    /// per-router load (see [`begin_tick`](Mesh::begin_tick)).
    pub fn set_shards(&mut self, n: usize) {
        let n = n.clamp(1, self.routers.len());
        if n != self.shards_target {
            self.shards_target = n;
            self.plan_dirty = true;
        }
    }

    /// The current number of shards in the tick plan.
    pub fn shards(&self) -> usize {
        self.plan.len()
    }

    /// Number of routers with at least one buffered input message.
    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Installs the trace handle (events: flit inject/route/eject per
    /// virtual network). Purely observational — results are bit-identical
    /// with or without it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// Whether node `node` can inject on `vnet` at this time (local input
    /// buffer has space).
    pub fn can_inject(&self, node: NodeId, vnet: VNet) -> bool {
        // Synchronous links ignore the probe time.
        self.routers[node].inputs[Port::Local as usize][vnet.index()].can_push(Time::ZERO)
    }

    /// Injects a message at its source node's local port.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] if the local input buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `msg.src` or `msg.dst` is out of range.
    pub fn inject(&mut self, now: Time, mut msg: Message<P>) -> Result<(), PushError> {
        assert!(msg.src < self.cfg.nodes(), "source out of range");
        assert!(msg.dst < self.cfg.nodes(), "destination out of range");
        msg.injected_at = now;
        self.trace_seq += 1;
        msg.trace_id = self.trace_seq;
        let vnet = msg.vnet.index();
        let node = msg.src;
        let packed = pack_noc(msg.src, msg.dst, vnet, msg.flits);
        let trace_id = msg.trace_id;
        self.routers[node].inputs[Port::Local as usize][vnet].push(now, msg)?;
        self.tracer
            .emit(now.as_ps(), EventKind::NocInject, trace_id, packed);
        self.routers[node].occ |= 1 << (Port::Local as usize * VNET_COUNT + vnet);
        self.stats.injected += 1;
        self.active.insert(node);
        Ok(())
    }

    /// Removes the next delivered message for `node` on `vnet`, if any.
    pub fn eject(&mut self, node: NodeId, vnet: VNet) -> Option<Message<P>> {
        let m = self.eject[node][vnet.index()].pop_front();
        if m.is_some() {
            self.eject_pending -= 1;
            if self.eject[node].iter().all(|q| q.is_empty()) {
                self.eject_active.remove(&node);
            }
        }
        m
    }

    /// Whether any delivered message is waiting in an ejection queue.
    pub fn has_ejections(&self) -> bool {
        self.eject_pending > 0
    }

    /// The lowest-numbered node with a waiting ejection, if any. Callers
    /// drain nodes through [`eject`](Mesh::eject) in this order to visit
    /// only dirty nodes while matching an ascending all-nodes scan.
    pub fn first_eject_node(&self) -> Option<NodeId> {
        self.eject_active.iter().next().copied()
    }

    /// Peeks the next delivered message for `node` on `vnet`.
    pub fn peek_eject(&self, node: NodeId, vnet: VNet) -> Option<&Message<P>> {
        self.eject[node][vnet.index()].front()
    }

    /// Messages waiting in `node`'s ejection queue on `vnet`.
    pub fn eject_len(&self, node: NodeId, vnet: VNet) -> usize {
        self.eject[node][vnet.index()].len()
    }

    /// True when no message is buffered anywhere in the network (ejection
    /// queues included). O(1): the active worklist tracks exactly the routers
    /// with buffered inputs, and `eject_pending` counts ejection-queue
    /// occupancy.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.eject_pending == 0
    }

    /// The earliest time the mesh itself can make progress, or `None` when it
    /// is completely drained (ejection queues included).
    ///
    /// If any router holds a message that is already visible (it may have
    /// lost arbitration or been blocked this cycle), progress is possible at
    /// the very next router clock edge. Otherwise nothing can move before the
    /// earliest `ready_at` among buffered messages: fronts have the minimum
    /// `ready_at` of their queue (pushes are time-ordered with constant
    /// latency) and `out_busy` expiry alone moves nothing.
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if self.eject_pending > 0 {
            return Some(now);
        }
        let mut earliest: Option<Time> = None;
        for &node in &self.active {
            let mut occ = self.routers[node].occ;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let q = &self.routers[node].inputs[idx / VNET_COUNT][idx % VNET_COUNT];
                if let Some(ready) = q.front_ready_at() {
                    let cand = if ready <= now {
                        self.cfg.clock.next_edge_after(now)
                    } else {
                        ready
                    };
                    earliest = merge_min(earliest, Some(cand));
                }
            }
        }
        earliest
    }

    /// XY routing (delegates to [`MeshConfig::route`]).
    #[cfg(test)]
    fn route(&self, at: NodeId, dst: NodeId) -> Port {
        self.cfg.route(at, dst)
    }

    /// Rebuilds the contiguous shard plan from the folded load EWMAs.
    /// `1 +` keeps every router weighted even when the mesh just went
    /// idle, so the split degrades to an even one rather than starving.
    fn rebuild_plan(&mut self) {
        self.plan_dirty = false;
        let n = self.routers.len();
        let k = self.shards_target.clamp(1, n);
        if k == 1 {
            self.plan.clear();
            self.plan.push(0..n);
        } else {
            let weights: Vec<u64> = self.ewma.values().iter().map(|&v| 1 + v).collect();
            self.plan = partition_balanced(&weights, k);
        }
        self.lanes
            .resize_with(self.plan.len(), MeshTickLane::default);
    }

    /// Recomputes the start-of-tick fullness bitmask for `node` (probing
    /// only occupied queues — a full queue is necessarily non-empty).
    fn mask_node(&mut self, node: NodeId) {
        let r = &self.routers[node];
        let mut occ = r.occ;
        let mut full = 0u16;
        while occ != 0 {
            let idx = occ.trailing_zeros() as usize;
            occ &= occ - 1;
            // Synchronous links ignore the probe time.
            if !r.inputs[idx / VNET_COUNT][idx % VNET_COUNT].can_push(Time::ZERO) {
                full |= 1 << idx;
            }
        }
        if full != 0 {
            self.full_masks[node] = full;
            self.masked.push(node);
        }
    }

    /// The serial prologue of a tick: fold the rebalancer EWMAs (at
    /// deterministic simulated-time quanta only), rebuild the shard plan
    /// if needed, snapshot the active worklist into `scratch`, and compute
    /// the start-of-tick fullness masks for every queue a forward could
    /// probe (the neighbors of active routers).
    fn prepare_tick(&mut self, now: Time) {
        let period_ps = self.cfg.clock.period().as_ps().max(1);
        let quantum = now.as_ps() / period_ps / REBALANCE_QUANTUM_TICKS;
        if self.ewma.fold(&mut self.work_accum, quantum) {
            self.plan_dirty = true;
        }
        if self.plan_dirty {
            self.rebuild_plan();
        }
        // Snapshot the active set in ascending order: identical visit order
        // to the original 0..nodes scan restricted to routers that can act.
        // Messages forwarded during this tick are replayed by `finish_tick`
        // and are not visible until at least the next edge (`hop_latency`
        // ≥ one period), so re-activating a neighbor never changes this
        // tick's behavior.
        let mut worklist = std::mem::take(&mut self.scratch);
        worklist.clear();
        worklist.extend(self.active.iter().copied());
        self.scratch = worklist;
        for i in 0..self.masked.len() {
            let n = self.masked[i];
            self.full_masks[n] = 0;
        }
        self.masked.clear();
        let (w, h) = (self.cfg.width, self.cfg.height);
        for i in 0..self.scratch.len() {
            let node = self.scratch[i];
            let (x, y) = self.cfg.coords(node);
            if y > 0 {
                self.mask_node(node - w);
            }
            if y + 1 < h {
                self.mask_node(node + w);
            }
            if x + 1 < w {
                self.mask_node(node + 1);
            }
            if x > 0 {
                self.mask_node(node - 1);
            }
        }
    }

    /// Splits the tick into per-shard tasks for a worker pool. The caller
    /// must run **every** returned task exactly once (on any thread — they
    /// are range-disjoint; see [`MeshShardTask`]) and then call
    /// [`finish_tick`](Mesh::finish_tick) with the same `now`. Serial
    /// callers use [`tick`](Mesh::tick), which drives the identical code
    /// path inline; results are byte-identical either way, at any shard
    /// count.
    pub fn begin_tick(&mut self, now: Time) -> Vec<MeshShardTask<P>> {
        self.prepare_tick(now);
        let trace_on = self.tracer.is_enabled();
        let mut tasks = Vec::with_capacity(self.plan.len());
        for (i, range) in self.plan.iter().enumerate() {
            let wl_s = self.scratch.partition_point(|&n| n < range.start);
            let wl_e = self.scratch.partition_point(|&n| n < range.end);
            tasks.push(MeshShardTask {
                routers: unsafe { self.routers.as_mut_ptr().add(range.start) },
                routers_len: range.len(),
                node0: range.start,
                worklist: unsafe { self.scratch.as_ptr().add(wl_s) },
                wl_len: wl_e - wl_s,
                full: self.full_masks.as_ptr(),
                full_len: self.full_masks.len(),
                lane: unsafe { self.lanes.as_mut_ptr().add(i) },
                work: unsafe { self.work_accum.as_mut_ptr().add(range.start) },
                cfg: self.cfg,
                now,
                trace_on,
            });
        }
        tasks
    }

    /// Replays the per-shard lanes filled by the shard tasks, in ascending
    /// shard order (= serial router order): trace events first, then every
    /// deactivation, then every ejection, then every forward — removals
    /// strictly before insertions, and *all* pops (done in the shard
    /// phase) strictly before *all* pushes, so per-link occupancy samples
    /// are identical at every shard count.
    pub fn finish_tick(&mut self, now: Time) {
        if self.tracer.is_enabled() {
            for lane in &self.lanes {
                for &(ts, kind, a, b) in &lane.events {
                    self.tracer.emit(ts, kind, a, b);
                }
            }
        }
        for li in 0..self.lanes.len() {
            self.lanes[li].events.clear();
            let mut deact = std::mem::take(&mut self.lanes[li].deactivated);
            for &n in &deact {
                self.active.remove(&n);
            }
            deact.clear();
            self.lanes[li].deactivated = deact;
        }
        for li in 0..self.lanes.len() {
            let mut ejects = std::mem::take(&mut self.lanes[li].ejects);
            for (node, vn, msg) in ejects.drain(..) {
                self.stats.delivered += 1;
                self.stats.delivered_flits += u64::from(msg.flits);
                self.stats.total_latency += now.saturating_sub(msg.injected_at);
                self.eject[node][vn as usize].push_back(msg);
                self.eject_pending += 1;
                self.eject_active.insert(node);
            }
            self.lanes[li].ejects = ejects;
        }
        for li in 0..self.lanes.len() {
            let mut fwds = std::mem::take(&mut self.lanes[li].forwards);
            for (nb, in_port, vn, msg) in fwds.drain(..) {
                let queue = in_port as usize * VNET_COUNT + vn as usize;
                self.routers[nb].inputs[in_port as usize][vn as usize]
                    .push(now, msg)
                    .expect("start-of-tick fullness probe guarantees space");
                self.routers[nb].occ |= 1 << queue;
                self.active.insert(nb);
            }
            self.lanes[li].forwards = fwds;
        }
    }

    /// Advances the mesh by one fast-clock edge at time `now`.
    ///
    /// Each output port forwards at most one message per cycle (chosen
    /// round-robin over input-port/vnet pairs), honoring link serialization
    /// (`flits` cycles per link) and downstream buffer space, probed
    /// against the start-of-tick fullness snapshot (credit-based: a queue
    /// that frees space this cycle accepts new flits the next).
    ///
    /// This is the serial driver of the exact code path
    /// [`begin_tick`](Mesh::begin_tick)/[`finish_tick`](Mesh::finish_tick)
    /// run across a worker pool — the shard passes execute inline over the
    /// same plan, so results are byte-identical at any shard count.
    pub fn tick(&mut self, now: Time) {
        self.prepare_tick(now);
        let trace_on = self.tracer.is_enabled();
        let Mesh {
            cfg,
            routers,
            scratch,
            full_masks,
            lanes,
            work_accum,
            plan,
            ..
        } = self;
        for (i, range) in plan.iter().enumerate() {
            let wl_s = scratch.partition_point(|&n| n < range.start);
            let wl_e = scratch.partition_point(|&n| n < range.end);
            tick_shard(
                cfg,
                now,
                range.start,
                &mut routers[range.clone()],
                &scratch[wl_s..wl_e],
                full_masks,
                &mut work_accum[range.clone()],
                &mut lanes[i],
                trace_on,
            );
        }
        self.finish_tick(now);
    }
}

/// Fast-clock ticks per adaptive-rebalancing quantum. Folds happen when a
/// tick first executes past a quantum boundary — a pure function of
/// simulated time, so the shard layout never depends on wall clock or
/// thread count.
const REBALANCE_QUANTUM_TICKS: u64 = 4096;

const QUEUES: usize = PORT_COUNT * VNET_COUNT;
/// `front_route` sentinel: not probed yet this tick.
const UNKNOWN: u8 = 0xFF;
/// `front_route` sentinel: probed, no visible front.
const NO_MSG: u8 = 0xFE;

/// One shard's portion of a mesh tick: switch arbitration and pops on the
/// shard's own routers (`routers` covers nodes `node0..node0 + len`),
/// with every push — boundary-crossing *and* intra-shard — deferred into
/// `lane`. Downstream space is probed against the start-of-tick `full`
/// snapshot, never the live links, so the outcome is independent of shard
/// execution order.
#[allow(clippy::too_many_arguments)]
fn tick_shard<P>(
    cfg: &MeshConfig,
    now: Time,
    node0: NodeId,
    routers: &mut [Router<P>],
    worklist: &[NodeId],
    full: &[u16],
    work: &mut [u64],
    lane: &mut MeshTickLane<P>,
    trace_on: bool,
) {
    let period = cfg.clock.period();
    for &node in worklist {
        // Hoisted per-tick router borrow: the whole per-port loop runs on
        // one `&mut Router` with no repeated bounds checks.
        let r = &mut routers[node - node0];
        // Output port of each queue's visible front, probed lazily at
        // most once per tick (invalidated on pop): within a tick a
        // front only changes when we pop it, so caching is bit-exact
        // while the uncached scan re-probed each queue per port.
        let mut front_route = [UNKNOWN; QUEUES];
        for &out in &PORTS {
            let o = out as usize;
            if r.occ == 0 {
                break; // every input drained mid-tick
            }
            if r.out_busy[o] > now {
                continue;
            }
            // Round-robin over the 15 (port, vnet) input queues,
            // probing only the occupied ones (identical choice: an
            // empty queue never routes anywhere).
            let start = r.rr[o];
            let occ = r.occ;
            let mut chosen: Option<usize> = None;
            let mut idx = start;
            for _ in 0..QUEUES {
                if occ & (1 << idx) != 0 {
                    if front_route[idx] == UNKNOWN {
                        let q = &r.inputs[idx / VNET_COUNT][idx % VNET_COUNT];
                        front_route[idx] = match q.front(now) {
                            Some(m) => cfg.route(node, m.dst) as u8,
                            None => NO_MSG,
                        };
                    }
                    if front_route[idx] == o as u8 {
                        if out == Port::Local {
                            chosen = Some(idx);
                            break;
                        }
                        let (nb, in_port) = cfg.neighbor(node, out);
                        let vn = idx % VNET_COUNT;
                        if full[nb] & (1 << (in_port as usize * VNET_COUNT + vn)) == 0 {
                            chosen = Some(idx);
                            break;
                        }
                    }
                }
                idx += 1;
                if idx == QUEUES {
                    idx = 0;
                }
            }
            let Some(idx) = chosen else { continue };
            let (ip, vn) = (idx / VNET_COUNT, idx % VNET_COUNT);
            r.rr[o] = (idx + 1) % QUEUES;
            let msg = r.inputs[ip][vn].pop(now).expect("front was visible");
            front_route[idx] = UNKNOWN;
            if r.inputs[ip][vn].is_empty() {
                r.occ &= !(1 << idx);
            }
            r.out_busy[o] = now + period.mul(u64::from(msg.flits));
            work[node - node0] += 1;
            if out == Port::Local {
                if trace_on {
                    lane.events.push((
                        now.as_ps(),
                        EventKind::NocEject,
                        msg.trace_id,
                        pack_noc(msg.src, msg.dst, vn, msg.flits),
                    ));
                }
                lane.ejects.push((node, vn as u8, msg));
            } else {
                let (nb, in_port) = cfg.neighbor(node, out);
                if trace_on {
                    lane.events.push((
                        now.as_ps(),
                        EventKind::NocRoute,
                        msg.trace_id,
                        pack_hop(node, o, vn),
                    ));
                }
                lane.forwards.push((nb, in_port as u8, vn as u8, msg));
            }
        }
        if r.occ == 0 {
            lane.deactivated.push(node);
        }
    }
}

/// Raw-pointer work descriptor for one mesh shard, produced by
/// [`Mesh::begin_tick`] and safe to send to a worker thread.
///
/// Disjointness invariant (upheld by `begin_tick`): every task's
/// `routers`/`work`/`lane` pointers cover ranges of the parent mesh that
/// no other task of the same tick overlaps, while `worklist`/`full` are
/// read-only shared snapshots. The parent mesh must stay alive and
/// untouched until every task has run and
/// [`finish_tick`](Mesh::finish_tick) reclaims the lanes.
pub struct MeshShardTask<P> {
    routers: *mut Router<P>,
    routers_len: usize,
    node0: NodeId,
    worklist: *const NodeId,
    wl_len: usize,
    full: *const u16,
    full_len: usize,
    lane: *mut MeshTickLane<P>,
    work: *mut u64,
    cfg: MeshConfig,
    now: Time,
    trace_on: bool,
}

// SAFETY: the pointed-to regions are range-disjoint per task (see the
// struct docs) and `P: Send` makes the messages they contain sendable;
// the epoch barrier around the tick provides the necessary happens-before
// edges on both sides.
unsafe impl<P: Send> Send for MeshShardTask<P> {}

impl<P> MeshShardTask<P> {
    /// Runs this shard's portion of the tick.
    ///
    /// # Safety
    ///
    /// The parent [`Mesh`] must be alive and otherwise untouched (no
    /// concurrent `&mut` access, no other task overlapping this one's
    /// ranges — guaranteed for the task set of a single
    /// [`Mesh::begin_tick`] call), and each task must run at most once
    /// per `begin_tick`.
    pub unsafe fn run(&self) {
        let routers = std::slice::from_raw_parts_mut(self.routers, self.routers_len);
        let worklist = std::slice::from_raw_parts(self.worklist, self.wl_len);
        let full = std::slice::from_raw_parts(self.full, self.full_len);
        let work = std::slice::from_raw_parts_mut(self.work, self.routers_len);
        let lane = &mut *self.lane;
        tick_shard(
            &self.cfg,
            self.now,
            self.node0,
            routers,
            worklist,
            full,
            work,
            lane,
            self.trace_on,
        );
    }
}

impl<P> Component for Mesh<P> {
    fn name(&self) -> String {
        "mesh".to_string()
    }

    fn domain(&self) -> ClockDomain {
        ClockDomain::Fast
    }

    fn tick(&mut self, now: Time) {
        Mesh::tick(self, now);
    }

    /// Note the mesh-specific convention: a visible-but-blocked head reports
    /// the *next* clock edge (routers only arbitrate on edges), never `now`.
    fn next_event_time(&self, now: Time) -> Option<Time> {
        Mesh::next_event_time(self, now)
    }

    fn is_active(&self, _now: Time) -> bool {
        !self.is_idle()
    }

    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        for (node, router) in self.routers.iter().enumerate() {
            for (p, per_port) in router.inputs.iter().enumerate() {
                for (vn, link) in per_port.iter().enumerate() {
                    visit(
                        &format!("n{node}.{}.{}", PORTS[p].label(), VNET_LABELS[vn]),
                        link.report(),
                    );
                }
            }
        }
    }
}

impl Pack for VNet {
    fn pack(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(VNet::Req),
            1 => Ok(VNet::Fwd),
            2 => Ok(VNet::Resp),
            _ => Err(SnapError::Corrupt("invalid VNet discriminant")),
        }
    }
}

impl<P: Pack> Pack for Message<P> {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.src);
        w.len64(self.dst);
        self.vnet.pack(w);
        self.flits.pack(w);
        self.injected_at.pack(w);
        w.u64(self.trace_id);
        self.payload.pack(w);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let src = r.len64()?;
        let dst = r.len64()?;
        let vnet = VNet::unpack(r)?;
        let flits = u32::unpack(r)?;
        if flits == 0 {
            return Err(SnapError::Corrupt("zero-flit message"));
        }
        let injected_at = Time::unpack(r)?;
        let trace_id = r.u64()?;
        let payload = P::unpack(r)?;
        Ok(Message {
            src,
            dst,
            vnet,
            flits,
            injected_at,
            trace_id,
            payload,
        })
    }
}

impl Pack for MeshStats {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.delivered);
        w.u64(self.delivered_flits);
        self.total_latency.pack(w);
        w.u64(self.injected);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MeshStats {
            delivered: r.u64()?,
            delivered_flits: r.u64()?,
            total_latency: Time::unpack(r)?,
            injected: r.u64()?,
        })
    }
}

impl<P: Pack> Pack for MeshTickLane<P> {
    /// Serializes the deferred movement state (forwards, ejections,
    /// deactivations). Trace `events` are a session resource, like the
    /// tracer handle itself, and stay out of snapshots.
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.forwards.len());
        for (node, in_port, vn, m) in &self.forwards {
            w.len64(*node);
            w.u8(*in_port);
            w.u8(*vn);
            m.pack(w);
        }
        w.len64(self.ejects.len());
        for (node, vn, m) in &self.ejects {
            w.len64(*node);
            w.u8(*vn);
            m.pack(w);
        }
        w.len64(self.deactivated.len());
        for &n in &self.deactivated {
            w.len64(n);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut lane = MeshTickLane::default();
        for _ in 0..r.len64()? {
            lane.forwards
                .push((r.len64()?, r.u8()?, r.u8()?, Message::unpack(r)?));
        }
        for _ in 0..r.len64()? {
            lane.ejects.push((r.len64()?, r.u8()?, Message::unpack(r)?));
        }
        for _ in 0..r.len64()? {
            lane.deactivated.push(r.len64()?);
        }
        Ok(lane)
    }
}

impl<P: Pack> Snap for Mesh<P> {
    /// Serializes router buffers, ejection queues, traffic stats, the
    /// trace-id counter, and the boundary-exchange lane state (one
    /// combined lane — concatenation in shard order — so the encoding is
    /// independent of the shard count). The derived worklists (`active`,
    /// `eject_active`, `eject_pending`, per-router `occ`, the fullness
    /// masks) are *recomputed* from the loaded buffers — they are pure
    /// functions of queue occupancy, so rebuilding them is bit-exact and
    /// removes a whole class of corrupt-snapshot inconsistencies.
    /// `scratch` is transient (cleared at every tick), the tracer handle
    /// is a session resource, and the adaptive rebalancer (`work_accum`,
    /// the load EWMAs, the plan itself) is host-side machinery that never
    /// influences results; none of those are serialized — a restored mesh
    /// re-learns its load profile from zero.
    fn save(&self, w: &mut SnapWriter) {
        w.len64(self.routers.len());
        for router in &self.routers {
            for per_port in &router.inputs {
                for link in per_port {
                    link.save(w);
                }
            }
            router.out_busy.pack(w);
            router.rr.pack(w);
        }
        for node in &self.eject {
            for q in node {
                q.pack(w);
            }
        }
        self.stats.pack(w);
        w.u64(self.trace_seq);
        // One combined lane, concatenated in shard order — same wire
        // format as `MeshTickLane::pack`, written without cloning.
        w.len64(self.lanes.iter().map(|l| l.forwards.len()).sum());
        for lane in &self.lanes {
            for (node, in_port, vn, m) in &lane.forwards {
                w.len64(*node);
                w.u8(*in_port);
                w.u8(*vn);
                m.pack(w);
            }
        }
        w.len64(self.lanes.iter().map(|l| l.ejects.len()).sum());
        for lane in &self.lanes {
            for (node, vn, m) in &lane.ejects {
                w.len64(*node);
                w.u8(*vn);
                m.pack(w);
            }
        }
        w.len64(self.lanes.iter().map(|l| l.deactivated.len()).sum());
        for lane in &self.lanes {
            for &n in &lane.deactivated {
                w.len64(n);
            }
        }
    }
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.len64()? != self.routers.len() {
            return Err(SnapError::Corrupt("mesh node count mismatch"));
        }
        self.active.clear();
        for (node, router) in self.routers.iter_mut().enumerate() {
            let mut occ: u16 = 0;
            for (p, per_port) in router.inputs.iter_mut().enumerate() {
                for (vn, link) in per_port.iter_mut().enumerate() {
                    link.load(r)?;
                    if !link.is_empty() {
                        occ |= 1 << (p * VNET_COUNT + vn);
                    }
                }
            }
            router.out_busy = <[Time; PORT_COUNT]>::unpack(r)?;
            router.rr = <[usize; PORT_COUNT]>::unpack(r)?;
            router.occ = occ;
            if occ != 0 {
                self.active.insert(node);
            }
        }
        self.eject_pending = 0;
        self.eject_active.clear();
        for node in 0..self.eject.len() {
            for vn in 0..VNET_COUNT {
                self.eject[node][vn] = VecDeque::<Message<P>>::unpack(r)?;
                for m in &self.eject[node][vn] {
                    if m.src >= self.cfg.nodes() || m.dst >= self.cfg.nodes() {
                        return Err(SnapError::Corrupt("ejected message node out of range"));
                    }
                }
                self.eject_pending += self.eject[node][vn].len();
            }
            if self.eject[node].iter().any(|q| !q.is_empty()) {
                self.eject_active.insert(node);
            }
        }
        self.stats = MeshStats::unpack(r)?;
        self.trace_seq = r.u64()?;
        // Snapshots are taken between clock edges, where every lane has
        // been drained by `finish_tick`; a non-empty lane means the buffer
        // was produced mid-tick (or corrupted).
        let combined = MeshTickLane::<P>::unpack(r)?;
        if !combined.is_empty() {
            return Err(SnapError::Corrupt("mesh tick lane not drained"));
        }
        for lane in &mut self.lanes {
            lane.forwards.clear();
            lane.ejects.clear();
            lane.deactivated.clear();
            lane.events.clear();
        }
        self.scratch.clear();
        // Host-side rebalancer and the start-of-tick fullness snapshot:
        // cleared, not loaded — the masks are recomputed by the next
        // `prepare_tick` and the EWMAs re-learn from zero.
        self.full_masks.iter_mut().for_each(|m| *m = 0);
        self.masked.clear();
        self.work_accum.iter_mut().for_each(|a| *a = 0);
        self.ewma.reset();
        Ok(())
    }
}

impl Pack for DirtyNodes {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.nodes.len());
        for &n in &self.nodes {
            w.len64(n);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len64()?;
        let mut nodes = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            nodes.push(r.len64()?);
        }
        if !nodes.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapError::Corrupt("dirty node list not strictly ascending"));
        }
        Ok(DirtyNodes { nodes })
    }
}

/// A sorted, duplicate-free set of node ids, used as a dirty list by the
/// run loop: nodes whose injection pipes are non-empty. Iteration order is
/// always ascending node id, so a scan over the dirty set visits nodes in
/// exactly the same order as a full `0..nodes` scan — that makes the
/// optimized injection pump bit-identical to the naive one, and lets
/// per-shard dirty lists (each sorted, covering disjoint ranges) merge
/// deterministically regardless of which thread produced them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirtyNodes {
    nodes: Vec<NodeId>,
}

impl DirtyNodes {
    /// An empty set.
    pub fn new() -> Self {
        DirtyNodes::default()
    }

    /// Adds `node` if not already present. O(log n) search + O(n) shift;
    /// dirty sets are tiny (bounded by in-flight injection sources).
    pub fn insert(&mut self, node: NodeId) {
        if let Err(i) = self.nodes.binary_search(&node) {
            self.nodes.insert(i, node);
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Merges a sorted (strictly ascending) slice into the set in one
    /// pass — O(n + m) instead of m binary-search-and-shift inserts, used
    /// when replaying per-shard dirty lists at the deterministic merge.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) if `other` is not strictly ascending.
    pub fn merge_sorted(&mut self, other: &[NodeId]) {
        debug_assert!(other.windows(2).all(|w| w[0] < w[1]));
        if other.is_empty() {
            return;
        }
        if self.nodes.is_empty()
            || *other.first().expect("non-empty") > *self.nodes.last().expect("non-empty")
        {
            self.nodes.extend_from_slice(other);
            return;
        }
        let merged = {
            let mut merged = Vec::with_capacity(self.nodes.len() + other.len());
            let (mut i, mut j) = (0, 0);
            while i < self.nodes.len() && j < other.len() {
                match self.nodes[i].cmp(&other[j]) {
                    std::cmp::Ordering::Less => {
                        merged.push(self.nodes[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(other[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(self.nodes[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            merged.extend_from_slice(&self.nodes[i..]);
            merged.extend_from_slice(&other[j..]);
            merged
        };
        self.nodes = merged;
    }

    /// Keeps only the nodes for which `keep` returns true, preserving
    /// ascending order. `keep` is called exactly once per node, ascending.
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        self.nodes.retain(|&n| keep(n));
    }

    /// Number of dirty nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Ascending iteration over the dirty node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_until<P>(
        mesh: &mut Mesh<P>,
        start: Time,
        node: NodeId,
        vnet: VNet,
        max_cycles: u32,
    ) -> (Time, Message<P>) {
        let mut t = start;
        for _ in 0..max_cycles {
            t += Time::from_ps(1000);
            mesh.tick(t);
            if let Some(m) = mesh.eject(node, vnet) {
                return (t, m);
            }
        }
        panic!("message not delivered within {max_cycles} cycles");
    }

    #[test]
    fn single_hop_delivery() {
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 1, 7))
            .unwrap();
        let (_, m) = step_until(&mut mesh, t0, 1, VNet::Req, 10);
        assert_eq!(m.payload, 7);
        assert_eq!(mesh.stats().delivered, 1);
    }

    #[test]
    fn self_delivery_via_local_port() {
        let cfg = MeshConfig::new(2, 2, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(2, 2, VNet::Resp, 1, 42))
            .unwrap();
        let (_, m) = step_until(&mut mesh, t0, 2, VNet::Resp, 10);
        assert_eq!(m.payload, 42);
    }

    #[test]
    fn latency_scales_with_hops() {
        // 4x4 mesh: corner to corner is 6 hops.
        let cfg = MeshConfig::new(4, 4, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 15, VNet::Req, 1, 0))
            .unwrap();
        let (t_far, _) = step_until(&mut mesh, t0, 15, VNet::Req, 40);

        let mut mesh2: Mesh<u32> = Mesh::new(cfg);
        mesh2
            .inject(t0, Message::new(0, 1, VNet::Req, 1, 0))
            .unwrap();
        let (t_near, _) = step_until(&mut mesh2, t0, 1, VNet::Req, 40);
        assert!(t_far > t_near, "corner-to-corner must take longer");
        // 6 hops at 1 cycle/hop + ejection arbitration.
        let cycles = (t_far - t0).as_ps() / 1000;
        assert!((6..=10).contains(&cycles), "got {cycles} cycles");
    }

    #[test]
    fn xy_route_is_deterministic() {
        let cfg = MeshConfig::new(3, 3, Clock::ghz1());
        let mesh: Mesh<u32> = Mesh::new(cfg);
        // From center (1,1)=4 to (2,2)=8: X first -> East.
        assert_eq!(mesh.route(4, 8) as usize, Port::East as usize);
        // To (0,2)=6: West first.
        assert_eq!(mesh.route(4, 6) as usize, Port::West as usize);
        // Same column (1,0)=1: North.
        assert_eq!(mesh.route(4, 1) as usize, Port::North as usize);
        assert_eq!(mesh.route(4, 7) as usize, Port::South as usize);
        assert_eq!(mesh.route(4, 4) as usize, Port::Local as usize);
    }

    #[test]
    fn point_to_point_ordering_same_vnet() {
        let cfg = MeshConfig::new(4, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let mut t = Time::from_ps(1000);
        let mut injected = 0u32;
        let mut received = Vec::new();
        let mut cycles = 0;
        while received.len() < 20 {
            if injected < 20 && mesh.can_inject(0, VNet::Req) {
                mesh.inject(t, Message::new(0, 3, VNet::Req, 2, injected))
                    .unwrap();
                injected += 1;
            }
            mesh.tick(t);
            while let Some(m) = mesh.eject(3, VNet::Req) {
                received.push(m.payload);
            }
            t += Time::from_ps(1000);
            cycles += 1;
            assert!(cycles < 1000, "deadlock");
        }
        assert_eq!(received, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn vnets_are_independently_buffered() {
        // Saturate Req; Resp must still flow.
        let cfg = MeshConfig::new(2, 1, Clock::ghz1()).with_buf_depth(1);
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        // Fill Req local buffer (depth 1) without ticking.
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 8, 1))
            .unwrap();
        assert!(!mesh.can_inject(0, VNet::Req));
        assert!(mesh.can_inject(0, VNet::Resp));
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 1, 2))
            .unwrap();
        let (_, m) = step_until(&mut mesh, t0, 1, VNet::Resp, 20);
        assert_eq!(m.payload, 2);
    }

    #[test]
    fn serialization_delay_for_long_messages() {
        // Two 3-flit messages over the same link: second is delayed by
        // serialization of the first.
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 3, 1))
            .unwrap();
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 3, 2))
            .unwrap();
        let (t1, m1) = step_until(&mut mesh, t0, 1, VNet::Resp, 20);
        assert_eq!(m1.payload, 1);
        let (t2, m2) = step_until(&mut mesh, t1, 1, VNet::Resp, 20);
        assert_eq!(m2.payload, 2);
        let gap_cycles = (t2 - t1).as_ps() / 1000;
        assert!(
            gap_cycles >= 3,
            "second message must wait serialization, gap {gap_cycles}"
        );
    }

    #[test]
    fn backpressure_no_message_loss() {
        // Many-to-one hotspot: all messages eventually delivered, none lost,
        // per-source order preserved.
        let cfg = MeshConfig::new(3, 3, Clock::ghz1()).with_buf_depth(2);
        let mut mesh: Mesh<(usize, u32)> = Mesh::new(cfg);
        let mut t = Time::from_ps(1000);
        let mut pending: Vec<VecDeque<(usize, u32)>> = (0..9)
            .map(|src| (0..10).map(|i| (src, i)).collect())
            .collect();
        let mut got = 0usize;
        let mut per_src_last: [i64; 9] = [-1; 9];
        for _ in 0..5000 {
            for (src, queue) in pending.iter_mut().enumerate() {
                if src == 4 {
                    continue;
                }
                if let Some(&(s, i)) = queue.front() {
                    if mesh.can_inject(src, VNet::Req) {
                        mesh.inject(t, Message::new(src, 4, VNet::Req, 2, (s, i)))
                            .unwrap();
                        queue.pop_front();
                    }
                }
            }
            mesh.tick(t);
            while let Some(m) = mesh.eject(4, VNet::Req) {
                let (s, i) = m.payload;
                assert_eq!(per_src_last[s] + 1, i as i64, "per-source order broken");
                per_src_last[s] = i as i64;
                got += 1;
            }
            t += Time::from_ps(1000);
            if got == 80 {
                break;
            }
        }
        assert_eq!(got, 80, "all messages from 8 sources delivered");
        assert!(mesh.is_idle());
    }

    #[test]
    fn stats_accumulate() {
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 2, 0))
            .unwrap();
        step_until(&mut mesh, t0, 1, VNet::Req, 10);
        let s = mesh.stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.delivered_flits, 2);
        assert!(s.mean_latency() > Time::ZERO);
    }

    #[test]
    fn config_coord_roundtrip() {
        let cfg = MeshConfig::new(5, 3, Clock::ghz1());
        for id in 0..cfg.nodes() {
            let (x, y) = cfg.coords(id);
            assert_eq!(cfg.node_at(x, y), id);
        }
    }

    #[test]
    #[should_panic(expected = "a message is at least one flit")]
    fn zero_flit_message_panics() {
        let _ = Message::new(0, 1, VNet::Req, 0, ());
    }

    #[test]
    fn active_set_drains_to_idle() {
        let cfg = MeshConfig::new(4, 4, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        assert!(mesh.is_idle());
        assert_eq!(mesh.next_event_time(Time::from_ps(1000)), None);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 15, VNet::Req, 1, 9))
            .unwrap();
        assert!(!mesh.is_idle());
        // Head not yet visible: next event is its ready time, not the next edge.
        assert_eq!(mesh.next_event_time(t0), Some(Time::from_ps(2000)));
        let mut t = t0;
        let m = loop {
            t += Time::from_ps(1000);
            mesh.tick(t);
            if mesh.has_ejections() {
                break mesh.eject(15, VNet::Req).unwrap();
            }
            assert!(t < Time::from_ps(40_000), "not delivered");
        };
        assert_eq!(m.payload, 9);
        assert!(mesh.is_idle());
        assert_eq!(mesh.next_event_time(t), None);
        // Idle ticks after drain stay idle (and are cheap no-ops).
        for _ in 0..4 {
            t += Time::from_ps(1000);
            mesh.tick(t);
        }
        assert!(mesh.is_idle());
    }

    #[test]
    fn visible_but_blocked_head_reports_next_edge() {
        // Two messages race for the same link: the loser stays visible, so
        // the next event must be the next clock edge.
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 4, 1))
            .unwrap();
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 4, 2))
            .unwrap();
        let t1 = Time::from_ps(2000);
        mesh.tick(t1); // one wins, the other stays visible
        assert_eq!(mesh.next_event_time(t1), Some(Time::from_ps(3000)));
    }

    #[test]
    fn mesh_snapshot_roundtrip_mid_flight_is_bit_identical() {
        // Load a 3x3 mesh with in-flight traffic, snapshot it, keep running
        // both the original and a freshly-restored copy in lockstep: every
        // ejection (payload, time) and the final stats must match exactly.
        let cfg = MeshConfig::new(3, 3, Clock::ghz1());
        let mut a: Mesh<u64> = Mesh::new(cfg);
        let mut t = Time::from_ps(1000);
        for i in 0..12u64 {
            let (src, dst) = ((i % 8) as usize, ((i * 5 + 3) % 9) as usize);
            let vnet = [VNet::Req, VNet::Fwd, VNet::Resp][(i % 3) as usize];
            if a.can_inject(src, vnet) {
                a.inject(t, Message::new(src, dst, vnet, 1 + (i % 3) as u32, i))
                    .unwrap();
            }
            a.tick(t);
            t += Time::from_ps(1000);
        }
        // Snapshot mid-flight (some messages buffered, some ejected).
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b: Mesh<u64> = Mesh::new(cfg);
        let mut r = SnapReader::new(&buf);
        b.load(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(b.is_idle(), a.is_idle());
        // Drain both in lockstep.
        for _ in 0..200 {
            a.tick(t);
            b.tick(t);
            for node in 0..9 {
                for vnet in [VNet::Req, VNet::Fwd, VNet::Resp] {
                    loop {
                        let (ma, mb) = (a.eject(node, vnet), b.eject(node, vnet));
                        match (ma, mb) {
                            (None, None) => break,
                            (Some(x), Some(y)) => {
                                assert_eq!(x.payload, y.payload);
                                assert_eq!(x.trace_id, y.trace_id);
                                assert_eq!(x.injected_at, y.injected_at);
                            }
                            _ => panic!("ejection divergence at node {node}"),
                        }
                    }
                }
            }
            t += Time::from_ps(1000);
            if a.is_idle() && b.is_idle() {
                break;
            }
        }
        assert!(a.is_idle() && b.is_idle());
        assert_eq!(a.stats().delivered, b.stats().delivered);
        assert_eq!(a.stats().total_latency, b.stats().total_latency);
        assert_eq!(a.stats().injected, b.stats().injected);
        // New injections continue the same trace-id sequence.
        a.inject(t, Message::new(0, 1, VNet::Req, 1, 99)).unwrap();
        b.inject(t, Message::new(0, 1, VNet::Req, 1, 99)).unwrap();
        assert!(a.peek_eject(0, VNet::Req).is_none());
        assert_eq!(a.stats().injected, b.stats().injected);
    }

    #[test]
    fn mesh_load_rejects_wrong_geometry() {
        let mut a: Mesh<u32> = Mesh::new(MeshConfig::new(2, 2, Clock::ghz1()));
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b: Mesh<u32> = Mesh::new(MeshConfig::new(3, 3, Clock::ghz1()));
        let mut r = SnapReader::new(&buf);
        assert!(matches!(b.load(&mut r), Err(SnapError::Corrupt(_))));
        let _ = a.eject(0, VNet::Req);
    }

    /// Drives a 4x4 mesh with traffic that crosses shard edges on both
    /// axes (corner-to-corner flows through the center, a hotspot, and
    /// self-deliveries) for long enough to cross several rebalancing
    /// quanta, and asserts the ejection streams, stats, and per-link
    /// reports are identical at every shard count — including counts that
    /// put a shard boundary through the corner routers' row *and* column.
    #[test]
    fn sharded_tick_is_invariant_across_shard_counts() {
        type LinkRow = (String, u64, u64, usize, [u64; 8]);
        fn run(shards: usize) -> (Vec<(u64, NodeId, u64)>, MeshStats, Vec<LinkRow>) {
            let cfg = MeshConfig::new(4, 4, Clock::ghz1());
            let mut mesh: Mesh<u64> = Mesh::new(cfg);
            mesh.set_shards(shards);
            let flows: [(NodeId, NodeId); 6] =
                [(0, 15), (15, 0), (3, 12), (12, 3), (5, 5), (1, 14)];
            let mut ejected: Vec<(u64, NodeId, u64)> = Vec::new();
            let mut t = Time::ZERO;
            let mut seq = 0u64;
            for cycle in 0..6000u64 {
                t += Time::from_ps(1000);
                // Bursty injection so queues fill and the fullness probe
                // actually blocks (exercising the credit path), with long
                // idle gaps so the EWMA folds see both load and decay.
                if cycle % 3 == 0 && cycle % 512 < 160 {
                    for &(src, dst) in &flows {
                        let vnet = [VNet::Req, VNet::Fwd, VNet::Resp][(seq % 3) as usize];
                        if mesh.can_inject(src, vnet) {
                            let flits = 1 + (seq % 3) as u32;
                            mesh.inject(t, Message::new(src, dst, vnet, flits, seq))
                                .unwrap();
                            seq += 1;
                        }
                    }
                }
                mesh.tick(t);
                while let Some(node) = mesh.first_eject_node() {
                    for vnet in VNet::ALL {
                        while let Some(m) = mesh.eject(node, vnet) {
                            ejected.push((t.as_ps(), node, m.payload));
                        }
                    }
                }
            }
            let mut links = Vec::new();
            Component::visit_links(&mesh, &mut |name, rep| {
                links.push((
                    name.to_string(),
                    rep.stats.pushes,
                    rep.stats.pops,
                    rep.stats.peak_occupancy,
                    rep.stats.occupancy_hist,
                ));
            });
            (ejected, mesh.stats(), links)
        }
        let (base_ej, base_stats, base_links) = run(1);
        assert!(
            base_stats.delivered > 500,
            "workload actually moved traffic"
        );
        for shards in [2, 3, 4, 5, 8, 16] {
            let (ej, stats, links) = run(shards);
            assert_eq!(ej, base_ej, "ejection stream differs at {shards} shards");
            assert_eq!(stats.delivered, base_stats.delivered);
            assert_eq!(stats.delivered_flits, base_stats.delivered_flits);
            assert_eq!(stats.total_latency, base_stats.total_latency);
            assert_eq!(stats.injected, base_stats.injected);
            assert_eq!(links, base_links, "link reports differ at {shards} shards");
        }
    }

    /// The pooled entry points (`begin_tick` task set + `finish_tick`)
    /// must produce exactly what the inline `tick` does — run the tasks
    /// on the calling thread here; thread placement cannot matter for
    /// range-disjoint tasks.
    #[test]
    fn begin_finish_tick_matches_inline_tick() {
        let cfg = MeshConfig::new(4, 4, Clock::ghz1());
        let mut a: Mesh<u64> = Mesh::new(cfg);
        let mut b: Mesh<u64> = Mesh::new(cfg);
        a.set_shards(4);
        b.set_shards(4);
        let mut t = Time::ZERO;
        for i in 0..400u64 {
            t += Time::from_ps(1000);
            if i % 2 == 0 {
                let (src, dst) = ((i % 16) as usize, ((i * 7 + 3) % 16) as usize);
                for m in [&mut a, &mut b] {
                    if m.can_inject(src, VNet::Req) {
                        m.inject(t, Message::new(src, dst, VNet::Req, 2, i))
                            .unwrap();
                    }
                }
            }
            a.tick(t);
            let tasks = b.begin_tick(t);
            for task in &tasks {
                // SAFETY: tasks from one begin_tick are range-disjoint and
                // each runs exactly once before finish_tick.
                unsafe { task.run() };
            }
            b.finish_tick(t);
            for node in 0..16 {
                for vnet in VNet::ALL {
                    loop {
                        match (a.eject(node, vnet), b.eject(node, vnet)) {
                            (None, None) => break,
                            (Some(x), Some(y)) => assert_eq!(x.payload, y.payload),
                            _ => panic!("ejection divergence at node {node}"),
                        }
                    }
                }
            }
        }
        assert_eq!(a.stats().delivered, b.stats().delivered);
        assert!(a.is_idle() == b.is_idle());
    }

    #[test]
    fn mesh_snapshot_rejects_undrained_lane() {
        // Hand-craft a buffer whose trailing lane section claims one
        // pending forward: load must fail loudly instead of dropping it.
        let cfg = MeshConfig::new(2, 2, Clock::ghz1());
        let a: Mesh<u32> = Mesh::new(cfg);
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let mut buf = w.finish();
        // The clean save ends with three zero-length lane counts; rewrite
        // the tail with a lane carrying one deactivation instead.
        let mut lane: MeshTickLane<u32> = MeshTickLane::default();
        lane.deactivated.push(1);
        let mut lw = SnapWriter::new();
        lane.pack(&mut lw);
        let lane_bytes = lw.finish();
        let mut empty_lw = SnapWriter::new();
        MeshTickLane::<u32>::default().pack(&mut empty_lw);
        let empty_len = empty_lw.finish().len();
        buf.truncate(buf.len() - empty_len);
        buf.extend_from_slice(&lane_bytes);
        let mut b: Mesh<u32> = Mesh::new(cfg);
        let mut r = SnapReader::new(&buf);
        assert!(matches!(b.load(&mut r), Err(SnapError::Corrupt(_))));
    }

    #[test]
    fn dirty_nodes_pack_roundtrip() {
        let mut d = DirtyNodes::new();
        for n in [5, 1, 8] {
            d.insert(n);
        }
        let mut w = SnapWriter::new();
        d.pack(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        let back = DirtyNodes::unpack(&mut r).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn dirty_nodes_stay_sorted_and_unique() {
        let mut d = DirtyNodes::new();
        for n in [7, 2, 9, 2, 7, 0, 9] {
            d.insert(n);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 2, 7, 9]);
        assert!(d.contains(7));
        assert!(!d.contains(5));
        let mut seen = Vec::new();
        d.retain(|n| {
            seen.push(n);
            n != 2
        });
        assert_eq!(seen, vec![0, 2, 7, 9], "retain visits ascending");
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 7, 9]);
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn dirty_nodes_merge_sorted_matches_inserts() {
        let cases: &[(&[NodeId], &[NodeId])] = &[
            (&[], &[1, 2, 3]),
            (&[1, 2, 3], &[]),
            (&[1, 5, 9], &[2, 5, 10]),
            (&[1, 2], &[3, 4]),       // append fast path
            (&[3, 4], &[1, 2]),       // prepend
            (&[2, 4, 6], &[2, 4, 6]), // all duplicates
        ];
        for (base, other) in cases {
            let mut merged = DirtyNodes::new();
            let mut reference = DirtyNodes::new();
            for &n in *base {
                merged.insert(n);
                reference.insert(n);
            }
            merged.merge_sorted(other);
            for &n in *other {
                reference.insert(n);
            }
            assert_eq!(
                merged.iter().collect::<Vec<_>>(),
                reference.iter().collect::<Vec<_>>(),
                "base {base:?} + {other:?}"
            );
        }
    }
}
