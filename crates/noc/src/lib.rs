#![warn(missing_docs)]
//! # duet-noc
//!
//! A cycle-level 2D-mesh network-on-chip modelled after the OpenPiton P-Mesh
//! NoC that Dolly (Sec. IV of the paper) is built on:
//!
//! * three independent **virtual networks** (request / forward / response) so
//!   the directory coherence protocol is deadlock-free,
//! * deterministic **XY routing**, which — combined with FIFO buffering and
//!   round-robin arbitration that never reorders within a queue — gives the
//!   **point-to-point ordering** guarantee the paper relies on ("The NoC
//!   offers point-to-point ordering of message delivery"),
//! * 64-bit flits with wormhole-style link serialization (a message of *n*
//!   flits occupies each link for *n* cycles),
//! * bounded router input buffers providing backpressure.
//!
//! The mesh runs entirely in the fast (system) clock domain; eFPGA traffic
//! enters it only through the Duet Adapter in `duet-core`.
//!
//! # Example
//!
//! ```
//! use duet_noc::{Mesh, MeshConfig, Message, VNet};
//! use duet_sim::{Clock, Time};
//!
//! let cfg = MeshConfig::new(2, 2, Clock::ghz1());
//! let mut mesh: Mesh<&'static str> = Mesh::new(cfg);
//! let t0 = Time::from_ps(1000);
//! mesh.inject(t0, Message::new(0, 3, VNet::Req, 1, "hello")).unwrap();
//! let mut t = t0;
//! let msg = loop {
//!     t = t + Time::from_ps(1000);
//!     mesh.tick(t);
//!     if let Some(m) = mesh.eject(3, VNet::Req) { break m; }
//! };
//! assert_eq!(msg.payload, "hello");
//! ```

use std::collections::{BTreeSet, VecDeque};

use duet_sim::{
    merge_min, Clock, ClockDomain, Component, Link, LinkReport, Pack, PushError, Snap, SnapError,
    SnapReader, SnapWriter, Time,
};
use duet_trace::{pack_hop, pack_noc, EventKind, Tracer};

/// Identifies a mesh node (tile). Row-major: `id = y * width + x`.
pub type NodeId = usize;

/// The three virtual networks of the coherence protocol.
///
/// Keeping requests, forwarded requests, and responses on independently
/// buffered networks is what makes the directory protocol deadlock-free
/// (responses can always sink regardless of request backlog).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VNet {
    /// Requests from private caches to directory homes (GetS/GetM/Put...).
    Req = 0,
    /// Directory-to-cache forwarded requests and invalidations.
    Fwd = 1,
    /// Data and acknowledgement responses.
    Resp = 2,
}

/// Number of virtual networks.
pub const VNET_COUNT: usize = 3;

impl VNet {
    /// All virtual networks, in priority order (Resp first — responses must
    /// drain to guarantee forward progress).
    pub const ALL: [VNet; VNET_COUNT] = [VNet::Resp, VNet::Fwd, VNet::Req];

    /// Index for array storage.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A message travelling on the mesh.
#[derive(Clone, Debug)]
pub struct Message<P> {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Virtual network this message travels on.
    pub vnet: VNet,
    /// Size in 64-bit flits (≥ 1; a 16-byte cacheline plus header is 3).
    pub flits: u32,
    /// When the message entered the network (set by [`Mesh::inject`]).
    pub injected_at: Time,
    /// Mesh-wide transaction id (set by [`Mesh::inject`] from a
    /// deterministic counter, tracing on or off) — lets a trace follow one
    /// message across hops.
    pub trace_id: u64,
    /// Protocol payload.
    pub payload: P,
}

impl<P> Message<P> {
    /// Creates a message; `injected_at` is filled in by [`Mesh::inject`].
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn new(src: NodeId, dst: NodeId, vnet: VNet, flits: u32, payload: P) -> Self {
        assert!(flits > 0, "a message is at least one flit");
        Message {
            src,
            dst,
            vnet,
            flits,
            injected_at: Time::ZERO,
            trace_id: 0,
            payload,
        }
    }
}

/// Router ports. `Local` is the tile-side injection/ejection port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Port {
    North = 0,
    South = 1,
    East = 2,
    West = 3,
    Local = 4,
}

const PORT_COUNT: usize = 5;
const PORTS: [Port; PORT_COUNT] = [
    Port::North,
    Port::South,
    Port::East,
    Port::West,
    Port::Local,
];

impl Port {
    fn label(self) -> &'static str {
        match self {
            Port::North => "north",
            Port::South => "south",
            Port::East => "east",
            Port::West => "west",
            Port::Local => "local",
        }
    }
}

const VNET_LABELS: [&str; VNET_COUNT] = ["req", "fwd", "resp"];

/// Mesh configuration.
#[derive(Clone, Copy, Debug)]
pub struct MeshConfig {
    /// Mesh width (columns).
    pub width: usize,
    /// Mesh height (rows).
    pub height: usize,
    /// Clock driving the routers (the fast/system clock).
    pub clock: Clock,
    /// Input-buffer depth in messages, per (port, vnet).
    pub buf_depth: usize,
    /// Cycles for one hop (router pipeline + link traversal).
    pub hop_cycles: u32,
}

impl MeshConfig {
    /// Creates a configuration with Dolly-like defaults: 2-deep buffers and
    /// single-cycle hops at the given clock.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize, clock: Clock) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        MeshConfig {
            width,
            height,
            clock,
            buf_depth: 2,
            hop_cycles: 1,
        }
    }

    /// Sets the input-buffer depth.
    pub fn with_buf_depth(mut self, depth: usize) -> Self {
        self.buf_depth = depth;
        self
    }

    /// Sets the per-hop latency in cycles.
    pub fn with_hop_cycles(mut self, cycles: u32) -> Self {
        self.hop_cycles = cycles;
        self
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinates of a node id.
    pub fn coords(&self, id: NodeId) -> (usize, usize) {
        (id % self.width, id / self.width)
    }

    /// Node id of coordinates.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        y * self.width + x
    }
}

#[derive(Clone)]
struct Router<P> {
    /// Input links, indexed `[port][vnet]`: one bounded synchronous link per
    /// (port, vnet) pair, modelling the per-vnet input buffers of an
    /// OpenPiton-style router port.
    inputs: Vec<Vec<Link<Message<P>>>>,
    /// Time until which each output port's link is serializing a message.
    out_busy: [Time; PORT_COUNT],
    /// Round-robin pointer per output port over (input port, vnet) pairs.
    rr: [usize; PORT_COUNT],
    /// Occupancy bitmask over the 15 (port, vnet) input queues (bit
    /// `port * VNET_COUNT + vnet`). Arbitration probes only set bits — an
    /// empty queue can never win, so skipping it is bit-exact — turning
    /// the 5x15 scan into 5 x popcount.
    occ: u16,
}

/// Aggregate traffic statistics for a mesh.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeshStats {
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Sum over delivered messages of (eject − inject) time.
    pub total_latency: Time,
    /// Messages injected.
    pub injected: u64,
}

impl MeshStats {
    /// Mean in-network latency per delivered message.
    pub fn mean_latency(&self) -> Time {
        self.total_latency
            .as_ps()
            .checked_div(self.delivered)
            .map_or(Time::ZERO, Time::from_ps)
    }
}

/// A 2D-mesh network-on-chip. See the crate-level docs for the model.
#[derive(Clone)]
pub struct Mesh<P> {
    cfg: MeshConfig,
    routers: Vec<Router<P>>,
    eject: Vec<[VecDeque<Message<P>>; VNET_COUNT]>,
    stats: MeshStats,
    /// Worklist of routers with at least one buffered input message. An idle
    /// router is a provable no-op in [`tick`](Mesh::tick) (round-robin
    /// pointers only move when a message is chosen, `out_busy` is only
    /// compared against `now`), so ticking only this set is bit-identical to
    /// scanning every router. Kept sorted so iteration order matches the
    /// original ascending scan.
    active: BTreeSet<NodeId>,
    /// Scratch buffer for the per-tick snapshot of `active` (avoids a fresh
    /// allocation every tick).
    scratch: Vec<NodeId>,
    /// Total messages sitting in ejection queues (all nodes, all vnets).
    eject_pending: usize,
    /// Nodes with at least one message in an ejection queue, kept sorted so
    /// draining them in worklist order matches the ascending all-nodes scan.
    eject_active: BTreeSet<NodeId>,
    /// Monotone transaction-id counter, stamped onto every injected
    /// message whether or not tracing is on (so enabling tracing never
    /// perturbs state).
    trace_seq: u64,
    /// Trace handle (disabled unless the owning system enables tracing).
    tracer: Tracer,
}

impl<P> Mesh<P> {
    /// Builds an idle mesh.
    pub fn new(cfg: MeshConfig) -> Self {
        let hop_latency = cfg.clock.period().mul(u64::from(cfg.hop_cycles));
        let routers = (0..cfg.nodes())
            .map(|_| Router {
                inputs: (0..PORT_COUNT)
                    .map(|_| {
                        (0..VNET_COUNT)
                            .map(|_| Link::sync(cfg.buf_depth, hop_latency))
                            .collect()
                    })
                    .collect(),
                out_busy: [Time::ZERO; PORT_COUNT],
                rr: [0; PORT_COUNT],
                occ: 0,
            })
            .collect();
        let eject = (0..cfg.nodes())
            .map(|_| [VecDeque::new(), VecDeque::new(), VecDeque::new()])
            .collect();
        Mesh {
            cfg,
            routers,
            eject,
            stats: MeshStats::default(),
            active: BTreeSet::new(),
            scratch: Vec::new(),
            eject_pending: 0,
            eject_active: BTreeSet::new(),
            trace_seq: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.cfg
    }

    /// Installs the trace handle (events: flit inject/route/eject per
    /// virtual network). Purely observational — results are bit-identical
    /// with or without it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> MeshStats {
        self.stats
    }

    /// Whether node `node` can inject on `vnet` at this time (local input
    /// buffer has space).
    pub fn can_inject(&self, node: NodeId, vnet: VNet) -> bool {
        // Synchronous links ignore the probe time.
        self.routers[node].inputs[Port::Local as usize][vnet.index()].can_push(Time::ZERO)
    }

    /// Injects a message at its source node's local port.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] if the local input buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `msg.src` or `msg.dst` is out of range.
    pub fn inject(&mut self, now: Time, mut msg: Message<P>) -> Result<(), PushError> {
        assert!(msg.src < self.cfg.nodes(), "source out of range");
        assert!(msg.dst < self.cfg.nodes(), "destination out of range");
        msg.injected_at = now;
        self.trace_seq += 1;
        msg.trace_id = self.trace_seq;
        let vnet = msg.vnet.index();
        let node = msg.src;
        let packed = pack_noc(msg.src, msg.dst, vnet, msg.flits);
        let trace_id = msg.trace_id;
        self.routers[node].inputs[Port::Local as usize][vnet].push(now, msg)?;
        self.tracer
            .emit(now.as_ps(), EventKind::NocInject, trace_id, packed);
        self.routers[node].occ |= 1 << (Port::Local as usize * VNET_COUNT + vnet);
        self.stats.injected += 1;
        self.active.insert(node);
        Ok(())
    }

    /// Removes the next delivered message for `node` on `vnet`, if any.
    pub fn eject(&mut self, node: NodeId, vnet: VNet) -> Option<Message<P>> {
        let m = self.eject[node][vnet.index()].pop_front();
        if m.is_some() {
            self.eject_pending -= 1;
            if self.eject[node].iter().all(|q| q.is_empty()) {
                self.eject_active.remove(&node);
            }
        }
        m
    }

    /// Whether any delivered message is waiting in an ejection queue.
    pub fn has_ejections(&self) -> bool {
        self.eject_pending > 0
    }

    /// The lowest-numbered node with a waiting ejection, if any. Callers
    /// drain nodes through [`eject`](Mesh::eject) in this order to visit
    /// only dirty nodes while matching an ascending all-nodes scan.
    pub fn first_eject_node(&self) -> Option<NodeId> {
        self.eject_active.iter().next().copied()
    }

    /// Peeks the next delivered message for `node` on `vnet`.
    pub fn peek_eject(&self, node: NodeId, vnet: VNet) -> Option<&Message<P>> {
        self.eject[node][vnet.index()].front()
    }

    /// Messages waiting in `node`'s ejection queue on `vnet`.
    pub fn eject_len(&self, node: NodeId, vnet: VNet) -> usize {
        self.eject[node][vnet.index()].len()
    }

    /// True when no message is buffered anywhere in the network (ejection
    /// queues included). O(1): the active worklist tracks exactly the routers
    /// with buffered inputs, and `eject_pending` counts ejection-queue
    /// occupancy.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.eject_pending == 0
    }

    /// The earliest time the mesh itself can make progress, or `None` when it
    /// is completely drained (ejection queues included).
    ///
    /// If any router holds a message that is already visible (it may have
    /// lost arbitration or been blocked this cycle), progress is possible at
    /// the very next router clock edge. Otherwise nothing can move before the
    /// earliest `ready_at` among buffered messages: fronts have the minimum
    /// `ready_at` of their queue (pushes are time-ordered with constant
    /// latency) and `out_busy` expiry alone moves nothing.
    pub fn next_event_time(&self, now: Time) -> Option<Time> {
        if self.eject_pending > 0 {
            return Some(now);
        }
        let mut earliest: Option<Time> = None;
        for &node in &self.active {
            let mut occ = self.routers[node].occ;
            while occ != 0 {
                let idx = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let q = &self.routers[node].inputs[idx / VNET_COUNT][idx % VNET_COUNT];
                if let Some(ready) = q.front_ready_at() {
                    let cand = if ready <= now {
                        self.cfg.clock.next_edge_after(now)
                    } else {
                        ready
                    };
                    earliest = merge_min(earliest, Some(cand));
                }
            }
        }
        earliest
    }

    /// XY routing: returns the output port at router `at` toward `dst`.
    fn route(&self, at: NodeId, dst: NodeId) -> Port {
        let (ax, ay) = self.cfg.coords(at);
        let (dx, dy) = self.cfg.coords(dst);
        if dx > ax {
            Port::East
        } else if dx < ax {
            Port::West
        } else if dy > ay {
            Port::South
        } else if dy < ay {
            Port::North
        } else {
            Port::Local
        }
    }

    /// Neighbor of `at` through output port `p`, and the input port the
    /// message arrives on there.
    fn neighbor(&self, at: NodeId, p: Port) -> (NodeId, Port) {
        let (x, y) = self.cfg.coords(at);
        match p {
            Port::North => (self.cfg.node_at(x, y - 1), Port::South),
            Port::South => (self.cfg.node_at(x, y + 1), Port::North),
            Port::East => (self.cfg.node_at(x + 1, y), Port::West),
            Port::West => (self.cfg.node_at(x - 1, y), Port::East),
            Port::Local => unreachable!("local port has no neighbor"),
        }
    }

    /// Advances the mesh by one fast-clock edge at time `now`.
    ///
    /// Each output port forwards at most one message per cycle (chosen
    /// round-robin over input-port/vnet pairs), honoring link serialization
    /// (`flits` cycles per link) and downstream buffer space.
    pub fn tick(&mut self, now: Time) {
        let period = self.cfg.clock.period();
        // Snapshot the active set in ascending order: identical visit order
        // to the original 0..nodes scan restricted to routers that can act.
        // Messages pushed to a neighbor during this tick are not visible
        // until at least the next edge (`hop_latency` ≥ one period), so
        // re-activating a neighbor mid-tick never changes this tick's
        // behavior, whichever side of `node` it is on.
        let mut worklist = std::mem::take(&mut self.scratch);
        worklist.clear();
        worklist.extend(self.active.iter().copied());
        const QUEUES: usize = PORT_COUNT * VNET_COUNT;
        /// `front_route` sentinel: not probed yet this tick.
        const UNKNOWN: u8 = 0xFF;
        /// `front_route` sentinel: probed, no visible front.
        const NO_MSG: u8 = 0xFE;
        for &node in &worklist {
            // Output port of each queue's visible front, probed lazily at
            // most once per tick (invalidated on pop): within a tick a
            // front only changes when we pop it, so caching is bit-exact
            // while the uncached scan re-probed each queue per port.
            let mut front_route = [UNKNOWN; QUEUES];
            for &out in &PORTS {
                let o = out as usize;
                if self.routers[node].occ == 0 {
                    break; // every input drained mid-tick
                }
                if self.routers[node].out_busy[o] > now {
                    continue;
                }
                // Round-robin over the 15 (port, vnet) input queues,
                // probing only the occupied ones (identical choice: an
                // empty queue never routes anywhere).
                let start = self.routers[node].rr[o];
                let occ = self.routers[node].occ;
                let mut chosen: Option<usize> = None;
                let mut idx = start;
                for _ in 0..QUEUES {
                    if occ & (1 << idx) != 0 {
                        if front_route[idx] == UNKNOWN {
                            let q = &self.routers[node].inputs[idx / VNET_COUNT][idx % VNET_COUNT];
                            front_route[idx] = match q.front(now) {
                                Some(m) => self.route(node, m.dst) as u8,
                                None => NO_MSG,
                            };
                        }
                        if front_route[idx] == o as u8 {
                            if out == Port::Local {
                                chosen = Some(idx);
                                break;
                            }
                            let (nb, in_port) = self.neighbor(node, out);
                            let vn = idx % VNET_COUNT;
                            if self.routers[nb].inputs[in_port as usize][vn].can_push(now) {
                                chosen = Some(idx);
                                break;
                            }
                        }
                    }
                    idx += 1;
                    if idx == QUEUES {
                        idx = 0;
                    }
                }
                let Some(idx) = chosen else { continue };
                let (ip, vn) = (idx / VNET_COUNT, idx % VNET_COUNT);
                self.routers[node].rr[o] = (idx + 1) % QUEUES;
                let msg = self.routers[node].inputs[ip][vn]
                    .pop(now)
                    .expect("front was visible");
                front_route[idx] = UNKNOWN;
                if self.routers[node].inputs[ip][vn].is_empty() {
                    self.routers[node].occ &= !(1 << idx);
                }
                self.routers[node].out_busy[o] = now + period.mul(u64::from(msg.flits));
                if out == Port::Local {
                    self.stats.delivered += 1;
                    self.stats.delivered_flits += u64::from(msg.flits);
                    self.stats.total_latency += now.saturating_sub(msg.injected_at);
                    self.tracer.emit(
                        now.as_ps(),
                        EventKind::NocEject,
                        msg.trace_id,
                        pack_noc(msg.src, msg.dst, vn, msg.flits),
                    );
                    self.eject[node][vn].push_back(msg);
                    self.eject_pending += 1;
                    self.eject_active.insert(node);
                } else {
                    let (nb, in_port) = self.neighbor(node, out);
                    self.tracer.emit(
                        now.as_ps(),
                        EventKind::NocRoute,
                        msg.trace_id,
                        pack_hop(node, out as usize, vn),
                    );
                    self.routers[nb].inputs[in_port as usize][vn]
                        .push(now, msg)
                        .expect("space was checked");
                    self.routers[nb].occ |= 1 << (in_port as usize * VNET_COUNT + vn);
                    self.active.insert(nb);
                }
            }
            if self.routers[node].occ == 0 {
                self.active.remove(&node);
            }
        }
        self.scratch = worklist;
    }
}

impl<P> Component for Mesh<P> {
    fn name(&self) -> String {
        "mesh".to_string()
    }

    fn domain(&self) -> ClockDomain {
        ClockDomain::Fast
    }

    fn tick(&mut self, now: Time) {
        Mesh::tick(self, now);
    }

    /// Note the mesh-specific convention: a visible-but-blocked head reports
    /// the *next* clock edge (routers only arbitrate on edges), never `now`.
    fn next_event_time(&self, now: Time) -> Option<Time> {
        Mesh::next_event_time(self, now)
    }

    fn is_active(&self, _now: Time) -> bool {
        !self.is_idle()
    }

    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        for (node, router) in self.routers.iter().enumerate() {
            for (p, per_port) in router.inputs.iter().enumerate() {
                for (vn, link) in per_port.iter().enumerate() {
                    visit(
                        &format!("n{node}.{}.{}", PORTS[p].label(), VNET_LABELS[vn]),
                        link.report(),
                    );
                }
            }
        }
    }
}

impl Pack for VNet {
    fn pack(&self, w: &mut SnapWriter) {
        w.u8(*self as u8);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(VNet::Req),
            1 => Ok(VNet::Fwd),
            2 => Ok(VNet::Resp),
            _ => Err(SnapError::Corrupt("invalid VNet discriminant")),
        }
    }
}

impl<P: Pack> Pack for Message<P> {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.src);
        w.len64(self.dst);
        self.vnet.pack(w);
        self.flits.pack(w);
        self.injected_at.pack(w);
        w.u64(self.trace_id);
        self.payload.pack(w);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let src = r.len64()?;
        let dst = r.len64()?;
        let vnet = VNet::unpack(r)?;
        let flits = u32::unpack(r)?;
        if flits == 0 {
            return Err(SnapError::Corrupt("zero-flit message"));
        }
        let injected_at = Time::unpack(r)?;
        let trace_id = r.u64()?;
        let payload = P::unpack(r)?;
        Ok(Message {
            src,
            dst,
            vnet,
            flits,
            injected_at,
            trace_id,
            payload,
        })
    }
}

impl Pack for MeshStats {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.delivered);
        w.u64(self.delivered_flits);
        self.total_latency.pack(w);
        w.u64(self.injected);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(MeshStats {
            delivered: r.u64()?,
            delivered_flits: r.u64()?,
            total_latency: Time::unpack(r)?,
            injected: r.u64()?,
        })
    }
}

impl<P: Pack> Snap for Mesh<P> {
    /// Serializes router buffers, ejection queues, traffic stats, and the
    /// trace-id counter. The derived worklists (`active`, `eject_active`,
    /// `eject_pending`, per-router `occ`) are *recomputed* from the loaded
    /// buffers — they are pure functions of queue occupancy, so rebuilding
    /// them is bit-exact and removes a whole class of corrupt-snapshot
    /// inconsistencies. `scratch` is transient (cleared at every tick) and
    /// the tracer handle is a session resource; neither is serialized.
    fn save(&self, w: &mut SnapWriter) {
        w.len64(self.routers.len());
        for router in &self.routers {
            for per_port in &router.inputs {
                for link in per_port {
                    link.save(w);
                }
            }
            router.out_busy.pack(w);
            router.rr.pack(w);
        }
        for node in &self.eject {
            for q in node {
                q.pack(w);
            }
        }
        self.stats.pack(w);
        w.u64(self.trace_seq);
    }
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        if r.len64()? != self.routers.len() {
            return Err(SnapError::Corrupt("mesh node count mismatch"));
        }
        self.active.clear();
        for (node, router) in self.routers.iter_mut().enumerate() {
            let mut occ: u16 = 0;
            for (p, per_port) in router.inputs.iter_mut().enumerate() {
                for (vn, link) in per_port.iter_mut().enumerate() {
                    link.load(r)?;
                    if !link.is_empty() {
                        occ |= 1 << (p * VNET_COUNT + vn);
                    }
                }
            }
            router.out_busy = <[Time; PORT_COUNT]>::unpack(r)?;
            router.rr = <[usize; PORT_COUNT]>::unpack(r)?;
            router.occ = occ;
            if occ != 0 {
                self.active.insert(node);
            }
        }
        self.eject_pending = 0;
        self.eject_active.clear();
        for node in 0..self.eject.len() {
            for vn in 0..VNET_COUNT {
                self.eject[node][vn] = VecDeque::<Message<P>>::unpack(r)?;
                for m in &self.eject[node][vn] {
                    if m.src >= self.cfg.nodes() || m.dst >= self.cfg.nodes() {
                        return Err(SnapError::Corrupt("ejected message node out of range"));
                    }
                }
                self.eject_pending += self.eject[node][vn].len();
            }
            if self.eject[node].iter().any(|q| !q.is_empty()) {
                self.eject_active.insert(node);
            }
        }
        self.stats = MeshStats::unpack(r)?;
        self.trace_seq = r.u64()?;
        self.scratch.clear();
        Ok(())
    }
}

impl Pack for DirtyNodes {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.nodes.len());
        for &n in &self.nodes {
            w.len64(n);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len64()?;
        let mut nodes = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            nodes.push(r.len64()?);
        }
        if !nodes.windows(2).all(|w| w[0] < w[1]) {
            return Err(SnapError::Corrupt("dirty node list not strictly ascending"));
        }
        Ok(DirtyNodes { nodes })
    }
}

/// A sorted, duplicate-free set of node ids, used as a dirty list by the
/// run loop: nodes whose injection pipes are non-empty. Iteration order is
/// always ascending node id, so a scan over the dirty set visits nodes in
/// exactly the same order as a full `0..nodes` scan — that makes the
/// optimized injection pump bit-identical to the naive one, and lets
/// per-shard dirty lists (each sorted, covering disjoint ranges) merge
/// deterministically regardless of which thread produced them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DirtyNodes {
    nodes: Vec<NodeId>,
}

impl DirtyNodes {
    /// An empty set.
    pub fn new() -> Self {
        DirtyNodes::default()
    }

    /// Adds `node` if not already present. O(log n) search + O(n) shift;
    /// dirty sets are tiny (bounded by in-flight injection sources).
    pub fn insert(&mut self, node: NodeId) {
        if let Err(i) = self.nodes.binary_search(&node) {
            self.nodes.insert(i, node);
        }
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Keeps only the nodes for which `keep` returns true, preserving
    /// ascending order. `keep` is called exactly once per node, ascending.
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        self.nodes.retain(|&n| keep(n));
    }

    /// Number of dirty nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// Ascending iteration over the dirty node ids.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_until<P>(
        mesh: &mut Mesh<P>,
        start: Time,
        node: NodeId,
        vnet: VNet,
        max_cycles: u32,
    ) -> (Time, Message<P>) {
        let mut t = start;
        for _ in 0..max_cycles {
            t += Time::from_ps(1000);
            mesh.tick(t);
            if let Some(m) = mesh.eject(node, vnet) {
                return (t, m);
            }
        }
        panic!("message not delivered within {max_cycles} cycles");
    }

    #[test]
    fn single_hop_delivery() {
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 1, 7))
            .unwrap();
        let (_, m) = step_until(&mut mesh, t0, 1, VNet::Req, 10);
        assert_eq!(m.payload, 7);
        assert_eq!(mesh.stats().delivered, 1);
    }

    #[test]
    fn self_delivery_via_local_port() {
        let cfg = MeshConfig::new(2, 2, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(2, 2, VNet::Resp, 1, 42))
            .unwrap();
        let (_, m) = step_until(&mut mesh, t0, 2, VNet::Resp, 10);
        assert_eq!(m.payload, 42);
    }

    #[test]
    fn latency_scales_with_hops() {
        // 4x4 mesh: corner to corner is 6 hops.
        let cfg = MeshConfig::new(4, 4, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 15, VNet::Req, 1, 0))
            .unwrap();
        let (t_far, _) = step_until(&mut mesh, t0, 15, VNet::Req, 40);

        let mut mesh2: Mesh<u32> = Mesh::new(cfg);
        mesh2
            .inject(t0, Message::new(0, 1, VNet::Req, 1, 0))
            .unwrap();
        let (t_near, _) = step_until(&mut mesh2, t0, 1, VNet::Req, 40);
        assert!(t_far > t_near, "corner-to-corner must take longer");
        // 6 hops at 1 cycle/hop + ejection arbitration.
        let cycles = (t_far - t0).as_ps() / 1000;
        assert!((6..=10).contains(&cycles), "got {cycles} cycles");
    }

    #[test]
    fn xy_route_is_deterministic() {
        let cfg = MeshConfig::new(3, 3, Clock::ghz1());
        let mesh: Mesh<u32> = Mesh::new(cfg);
        // From center (1,1)=4 to (2,2)=8: X first -> East.
        assert_eq!(mesh.route(4, 8) as usize, Port::East as usize);
        // To (0,2)=6: West first.
        assert_eq!(mesh.route(4, 6) as usize, Port::West as usize);
        // Same column (1,0)=1: North.
        assert_eq!(mesh.route(4, 1) as usize, Port::North as usize);
        assert_eq!(mesh.route(4, 7) as usize, Port::South as usize);
        assert_eq!(mesh.route(4, 4) as usize, Port::Local as usize);
    }

    #[test]
    fn point_to_point_ordering_same_vnet() {
        let cfg = MeshConfig::new(4, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let mut t = Time::from_ps(1000);
        let mut injected = 0u32;
        let mut received = Vec::new();
        let mut cycles = 0;
        while received.len() < 20 {
            if injected < 20 && mesh.can_inject(0, VNet::Req) {
                mesh.inject(t, Message::new(0, 3, VNet::Req, 2, injected))
                    .unwrap();
                injected += 1;
            }
            mesh.tick(t);
            while let Some(m) = mesh.eject(3, VNet::Req) {
                received.push(m.payload);
            }
            t += Time::from_ps(1000);
            cycles += 1;
            assert!(cycles < 1000, "deadlock");
        }
        assert_eq!(received, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn vnets_are_independently_buffered() {
        // Saturate Req; Resp must still flow.
        let cfg = MeshConfig::new(2, 1, Clock::ghz1()).with_buf_depth(1);
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        // Fill Req local buffer (depth 1) without ticking.
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 8, 1))
            .unwrap();
        assert!(!mesh.can_inject(0, VNet::Req));
        assert!(mesh.can_inject(0, VNet::Resp));
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 1, 2))
            .unwrap();
        let (_, m) = step_until(&mut mesh, t0, 1, VNet::Resp, 20);
        assert_eq!(m.payload, 2);
    }

    #[test]
    fn serialization_delay_for_long_messages() {
        // Two 3-flit messages over the same link: second is delayed by
        // serialization of the first.
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 3, 1))
            .unwrap();
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 3, 2))
            .unwrap();
        let (t1, m1) = step_until(&mut mesh, t0, 1, VNet::Resp, 20);
        assert_eq!(m1.payload, 1);
        let (t2, m2) = step_until(&mut mesh, t1, 1, VNet::Resp, 20);
        assert_eq!(m2.payload, 2);
        let gap_cycles = (t2 - t1).as_ps() / 1000;
        assert!(
            gap_cycles >= 3,
            "second message must wait serialization, gap {gap_cycles}"
        );
    }

    #[test]
    fn backpressure_no_message_loss() {
        // Many-to-one hotspot: all messages eventually delivered, none lost,
        // per-source order preserved.
        let cfg = MeshConfig::new(3, 3, Clock::ghz1()).with_buf_depth(2);
        let mut mesh: Mesh<(usize, u32)> = Mesh::new(cfg);
        let mut t = Time::from_ps(1000);
        let mut pending: Vec<VecDeque<(usize, u32)>> = (0..9)
            .map(|src| (0..10).map(|i| (src, i)).collect())
            .collect();
        let mut got = 0usize;
        let mut per_src_last: [i64; 9] = [-1; 9];
        for _ in 0..5000 {
            for (src, queue) in pending.iter_mut().enumerate() {
                if src == 4 {
                    continue;
                }
                if let Some(&(s, i)) = queue.front() {
                    if mesh.can_inject(src, VNet::Req) {
                        mesh.inject(t, Message::new(src, 4, VNet::Req, 2, (s, i)))
                            .unwrap();
                        queue.pop_front();
                    }
                }
            }
            mesh.tick(t);
            while let Some(m) = mesh.eject(4, VNet::Req) {
                let (s, i) = m.payload;
                assert_eq!(per_src_last[s] + 1, i as i64, "per-source order broken");
                per_src_last[s] = i as i64;
                got += 1;
            }
            t += Time::from_ps(1000);
            if got == 80 {
                break;
            }
        }
        assert_eq!(got, 80, "all messages from 8 sources delivered");
        assert!(mesh.is_idle());
    }

    #[test]
    fn stats_accumulate() {
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 2, 0))
            .unwrap();
        step_until(&mut mesh, t0, 1, VNet::Req, 10);
        let s = mesh.stats();
        assert_eq!(s.injected, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.delivered_flits, 2);
        assert!(s.mean_latency() > Time::ZERO);
    }

    #[test]
    fn config_coord_roundtrip() {
        let cfg = MeshConfig::new(5, 3, Clock::ghz1());
        for id in 0..cfg.nodes() {
            let (x, y) = cfg.coords(id);
            assert_eq!(cfg.node_at(x, y), id);
        }
    }

    #[test]
    #[should_panic(expected = "a message is at least one flit")]
    fn zero_flit_message_panics() {
        let _ = Message::new(0, 1, VNet::Req, 0, ());
    }

    #[test]
    fn active_set_drains_to_idle() {
        let cfg = MeshConfig::new(4, 4, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        assert!(mesh.is_idle());
        assert_eq!(mesh.next_event_time(Time::from_ps(1000)), None);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 15, VNet::Req, 1, 9))
            .unwrap();
        assert!(!mesh.is_idle());
        // Head not yet visible: next event is its ready time, not the next edge.
        assert_eq!(mesh.next_event_time(t0), Some(Time::from_ps(2000)));
        let mut t = t0;
        let m = loop {
            t += Time::from_ps(1000);
            mesh.tick(t);
            if mesh.has_ejections() {
                break mesh.eject(15, VNet::Req).unwrap();
            }
            assert!(t < Time::from_ps(40_000), "not delivered");
        };
        assert_eq!(m.payload, 9);
        assert!(mesh.is_idle());
        assert_eq!(mesh.next_event_time(t), None);
        // Idle ticks after drain stay idle (and are cheap no-ops).
        for _ in 0..4 {
            t += Time::from_ps(1000);
            mesh.tick(t);
        }
        assert!(mesh.is_idle());
    }

    #[test]
    fn visible_but_blocked_head_reports_next_edge() {
        // Two messages race for the same link: the loser stays visible, so
        // the next event must be the next clock edge.
        let cfg = MeshConfig::new(2, 1, Clock::ghz1());
        let mut mesh: Mesh<u32> = Mesh::new(cfg);
        let t0 = Time::from_ps(1000);
        mesh.inject(t0, Message::new(0, 1, VNet::Req, 4, 1))
            .unwrap();
        mesh.inject(t0, Message::new(0, 1, VNet::Resp, 4, 2))
            .unwrap();
        let t1 = Time::from_ps(2000);
        mesh.tick(t1); // one wins, the other stays visible
        assert_eq!(mesh.next_event_time(t1), Some(Time::from_ps(3000)));
    }

    #[test]
    fn mesh_snapshot_roundtrip_mid_flight_is_bit_identical() {
        // Load a 3x3 mesh with in-flight traffic, snapshot it, keep running
        // both the original and a freshly-restored copy in lockstep: every
        // ejection (payload, time) and the final stats must match exactly.
        let cfg = MeshConfig::new(3, 3, Clock::ghz1());
        let mut a: Mesh<u64> = Mesh::new(cfg);
        let mut t = Time::from_ps(1000);
        for i in 0..12u64 {
            let (src, dst) = ((i % 8) as usize, ((i * 5 + 3) % 9) as usize);
            let vnet = [VNet::Req, VNet::Fwd, VNet::Resp][(i % 3) as usize];
            if a.can_inject(src, vnet) {
                a.inject(t, Message::new(src, dst, vnet, 1 + (i % 3) as u32, i))
                    .unwrap();
            }
            a.tick(t);
            t += Time::from_ps(1000);
        }
        // Snapshot mid-flight (some messages buffered, some ejected).
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b: Mesh<u64> = Mesh::new(cfg);
        let mut r = SnapReader::new(&buf);
        b.load(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(b.is_idle(), a.is_idle());
        // Drain both in lockstep.
        for _ in 0..200 {
            a.tick(t);
            b.tick(t);
            for node in 0..9 {
                for vnet in [VNet::Req, VNet::Fwd, VNet::Resp] {
                    loop {
                        let (ma, mb) = (a.eject(node, vnet), b.eject(node, vnet));
                        match (ma, mb) {
                            (None, None) => break,
                            (Some(x), Some(y)) => {
                                assert_eq!(x.payload, y.payload);
                                assert_eq!(x.trace_id, y.trace_id);
                                assert_eq!(x.injected_at, y.injected_at);
                            }
                            _ => panic!("ejection divergence at node {node}"),
                        }
                    }
                }
            }
            t += Time::from_ps(1000);
            if a.is_idle() && b.is_idle() {
                break;
            }
        }
        assert!(a.is_idle() && b.is_idle());
        assert_eq!(a.stats().delivered, b.stats().delivered);
        assert_eq!(a.stats().total_latency, b.stats().total_latency);
        assert_eq!(a.stats().injected, b.stats().injected);
        // New injections continue the same trace-id sequence.
        a.inject(t, Message::new(0, 1, VNet::Req, 1, 99)).unwrap();
        b.inject(t, Message::new(0, 1, VNet::Req, 1, 99)).unwrap();
        assert!(a.peek_eject(0, VNet::Req).is_none());
        assert_eq!(a.stats().injected, b.stats().injected);
    }

    #[test]
    fn mesh_load_rejects_wrong_geometry() {
        let mut a: Mesh<u32> = Mesh::new(MeshConfig::new(2, 2, Clock::ghz1()));
        let mut w = SnapWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut b: Mesh<u32> = Mesh::new(MeshConfig::new(3, 3, Clock::ghz1()));
        let mut r = SnapReader::new(&buf);
        assert!(matches!(b.load(&mut r), Err(SnapError::Corrupt(_))));
        let _ = a.eject(0, VNet::Req);
    }

    #[test]
    fn dirty_nodes_pack_roundtrip() {
        let mut d = DirtyNodes::new();
        for n in [5, 1, 8] {
            d.insert(n);
        }
        let mut w = SnapWriter::new();
        d.pack(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        let back = DirtyNodes::unpack(&mut r).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn dirty_nodes_stay_sorted_and_unique() {
        let mut d = DirtyNodes::new();
        for n in [7, 2, 9, 2, 7, 0, 9] {
            d.insert(n);
        }
        assert_eq!(d.len(), 4);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 2, 7, 9]);
        assert!(d.contains(7));
        assert!(!d.contains(5));
        let mut seen = Vec::new();
        d.retain(|n| {
            seen.push(n);
            n != 2
        });
        assert_eq!(seen, vec![0, 2, 7, 9], "retain visits ascending");
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 7, 9]);
        d.clear();
        assert!(d.is_empty());
    }
}
