//! Clocks and the dual-domain edge sequencer.

use crate::time::Time;

/// A free-running clock described by its period and first-edge offset.
///
/// Only rising edges are modelled; all sequential logic in the simulator is
/// ticked on rising edges of its domain clock.
///
/// # Example
///
/// ```
/// use duet_sim::{Clock, Time};
/// let c = Clock::from_mhz(250.0); // 4 ns period
/// assert_eq!(c.period().as_ps(), 4000);
/// let e0 = c.first_edge();
/// assert_eq!(c.next_edge_after(e0), e0 + c.period());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Clock {
    period_ps: u64,
    offset_ps: u64,
}

impl Clock {
    /// Creates a clock with the given period. The first rising edge is at
    /// `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: Time, offset: Time) -> Self {
        assert!(period.as_ps() > 0, "clock period must be non-zero");
        Clock {
            period_ps: period.as_ps(),
            offset_ps: offset.as_ps(),
        }
    }

    /// The canonical 1 GHz system clock used throughout the evaluation
    /// (Sec. V-A boosts the processors and cache system to 1 GHz).
    pub fn ghz1() -> Self {
        Clock::new(Time::from_ps(1000), Time::from_ps(1000))
    }

    /// Creates a clock from a frequency in MHz, rounding the period to the
    /// nearest picosecond. First edge is one period after time zero so that
    /// reset state is observable at `Time::ZERO`.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not a positive finite number.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        let period_ps = (1_000_000.0 / mhz).round() as u64;
        Clock::new(Time::from_ps(period_ps), Time::from_ps(period_ps))
    }

    /// The clock period.
    pub fn period(&self) -> Time {
        Time::from_ps(self.period_ps)
    }

    /// Frequency in MHz (approximate, for reporting).
    pub fn freq_mhz(&self) -> f64 {
        1_000_000.0 / self.period_ps as f64
    }

    /// The time of the first rising edge.
    pub fn first_edge(&self) -> Time {
        Time::from_ps(self.offset_ps)
    }

    /// Whether `t` falls exactly on a rising edge of this clock.
    pub fn is_edge(&self, t: Time) -> bool {
        let ps = t.as_ps();
        ps >= self.offset_ps && (ps - self.offset_ps).is_multiple_of(self.period_ps)
    }

    /// The earliest rising edge at or after `t`.
    pub fn edge_at_or_after(&self, t: Time) -> Time {
        let ps = t.as_ps();
        if ps <= self.offset_ps {
            return Time::from_ps(self.offset_ps);
        }
        let delta = ps - self.offset_ps;
        let k = delta.div_ceil(self.period_ps);
        Time::from_ps(self.offset_ps + k * self.period_ps)
    }

    /// The earliest rising edge strictly after `t`.
    pub fn next_edge_after(&self, t: Time) -> Time {
        let e = self.edge_at_or_after(t);
        if e > t {
            e
        } else {
            e + self.period()
        }
    }

    /// The `n`-th rising edge strictly after `t` (`n = 1` is
    /// [`next_edge_after`](Clock::next_edge_after)).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn nth_edge_after(&self, t: Time, n: u32) -> Time {
        assert!(n > 0, "nth_edge_after requires n >= 1");
        self.next_edge_after(t) + self.period().mul(u64::from(n) - 1)
    }

    /// Number of whole periods elapsed at time `t` (cycle counter).
    pub fn cycles_at(&self, t: Time) -> u64 {
        let ps = t.as_ps();
        if ps < self.offset_ps {
            0
        } else {
            (ps - self.offset_ps) / self.period_ps + 1
        }
    }
}

/// Which domain(s) have a rising edge at a step of the [`DualClock`] sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeDomain {
    /// Only the fast (system/processor) clock has an edge.
    Fast,
    /// Only the slow (eFPGA) clock has an edge.
    Slow,
    /// Both clocks have a coincident edge. The convention throughout this
    /// workspace is to tick fast-domain components before slow-domain ones.
    Both,
}

impl EdgeDomain {
    /// Whether the fast domain ticks at this step.
    pub fn fast(self) -> bool {
        matches!(self, EdgeDomain::Fast | EdgeDomain::Both)
    }

    /// Whether the slow domain ticks at this step.
    pub fn slow(self) -> bool {
        matches!(self, EdgeDomain::Slow | EdgeDomain::Both)
    }
}

/// Generates the merged rising-edge sequence of a fast and a slow clock.
///
/// # Example
///
/// ```
/// use duet_sim::{Clock, DualClock, EdgeDomain};
/// let mut dc = DualClock::new(Clock::ghz1(), Clock::from_mhz(500.0));
/// let (t, d) = dc.next_edge();
/// assert_eq!(t.as_ps(), 1000);
/// assert_eq!(d, EdgeDomain::Fast); // slow first edge is at 2000
/// ```
#[derive(Clone, Debug)]
pub struct DualClock {
    fast: Clock,
    slow: Clock,
    now: Time,
    started: bool,
}

impl DualClock {
    /// Creates a sequencer over the two domains.
    pub fn new(fast: Clock, slow: Clock) -> Self {
        DualClock {
            fast,
            slow,
            now: Time::ZERO,
            started: false,
        }
    }

    /// The fast-domain clock.
    pub fn fast(&self) -> Clock {
        self.fast
    }

    /// The slow-domain clock.
    pub fn slow(&self) -> Clock {
        self.slow
    }

    /// The time of the most recently returned edge (ZERO before the first).
    pub fn now(&self) -> Time {
        self.now
    }

    /// The next slow-domain edge [`next_edge`](DualClock::next_edge) could
    /// return, without advancing (used to cap dead-edge skipping when the
    /// slow domain has per-edge work).
    pub fn next_slow_edge(&self) -> Time {
        if self.started {
            self.slow.next_edge_after(self.now)
        } else {
            self.slow.edge_at_or_after(self.now)
        }
    }

    /// Advances to the next edge in either domain and reports which
    /// domain(s) tick there.
    pub fn next_edge(&mut self) -> (Time, EdgeDomain) {
        let nf = if self.started {
            self.fast.next_edge_after(self.now)
        } else {
            self.fast.edge_at_or_after(self.now)
        };
        let ns = if self.started {
            self.slow.next_edge_after(self.now)
        } else {
            self.slow.edge_at_or_after(self.now)
        };
        self.started = true;
        let (t, d) = if nf < ns {
            (nf, EdgeDomain::Fast)
        } else if ns < nf {
            (ns, EdgeDomain::Slow)
        } else {
            (nf, EdgeDomain::Both)
        };
        self.now = t;
        (t, d)
    }

    /// Jumps both domains forward so the next [`next_edge`](DualClock::next_edge)
    /// returns the first merged edge at or after `t`, and reports how many
    /// `(fast, slow)` edges were skipped over in the process.
    ///
    /// Edges strictly after the current position and strictly **before** `t`
    /// are counted as skipped; an edge exactly at `t` is not skipped — it is
    /// the next edge to be executed. Calling with `t` at or before the current
    /// position is a no-op returning `(0, 0)`.
    ///
    /// This is the primitive behind dead-edge skipping: the caller proves that
    /// nothing observable happens before `t`, jumps there, and reconstructs
    /// per-domain edge counters from the returned skip counts so statistics
    /// stay bit-identical with edge-by-edge stepping.
    pub fn advance_to(&mut self, t: Time) -> (u64, u64) {
        if t <= self.now {
            return (0, 0);
        }
        // Position just before `t` so the next merged edge is the first one
        // at or after `t`. Edges in (now, t) are the skipped ones; counting
        // with the inclusive cycle counter at `t - 1ps` captures exactly that
        // half-open interval.
        let upto = Time::from_ps(t.as_ps() - 1);
        let fast = if self.started {
            self.fast.cycles_at(upto) - self.fast.cycles_at(self.now)
        } else {
            // Before the first next_edge() the edge at `now` itself has not
            // executed, so it too counts as skipped if it lies before `t`.
            let base = self.fast.cycles_at(self.now);
            let adj = if self.fast.is_edge(self.now) { 1 } else { 0 };
            self.fast.cycles_at(upto) - (base - adj.min(base))
        };
        let slow = if self.started {
            self.slow.cycles_at(upto) - self.slow.cycles_at(self.now)
        } else {
            let base = self.slow.cycles_at(self.now);
            let adj = if self.slow.is_edge(self.now) { 1 } else { 0 };
            self.slow.cycles_at(upto) - (base - adj.min(base))
        };
        self.now = upto;
        self.started = true;
        (fast, slow)
    }
}

impl crate::snapshot::Pack for Clock {
    fn pack(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u64(self.period_ps);
        w.u64(self.offset_ps);
    }
    fn unpack(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let period_ps = r.u64()?;
        let offset_ps = r.u64()?;
        if period_ps == 0 {
            return Err(crate::snapshot::SnapError::Corrupt("zero clock period"));
        }
        Ok(Clock {
            period_ps,
            offset_ps,
        })
    }
}

impl crate::snapshot::Snap for DualClock {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Pack;
        self.fast.pack(w);
        self.slow.pack(w);
        self.now.pack(w);
        self.started.pack(w);
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::Pack;
        self.fast = Clock::unpack(r)?;
        self.slow = Clock::unpack(r)?;
        self.now = Time::unpack(r)?;
        self.started = bool::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mhz_period() {
        assert_eq!(Clock::from_mhz(1000.0).period().as_ps(), 1000);
        assert_eq!(Clock::from_mhz(100.0).period().as_ps(), 10_000);
        assert_eq!(Clock::from_mhz(127.0).period().as_ps(), 7874);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn bad_freq_panics() {
        let _ = Clock::from_mhz(0.0);
    }

    #[test]
    fn edge_math() {
        let c = Clock::new(Time::from_ps(1000), Time::from_ps(1000));
        assert!(c.is_edge(Time::from_ps(1000)));
        assert!(c.is_edge(Time::from_ps(5000)));
        assert!(!c.is_edge(Time::from_ps(1500)));
        assert!(!c.is_edge(Time::from_ps(500)));
        assert_eq!(c.edge_at_or_after(Time::ZERO).as_ps(), 1000);
        assert_eq!(c.edge_at_or_after(Time::from_ps(1000)).as_ps(), 1000);
        assert_eq!(c.edge_at_or_after(Time::from_ps(1001)).as_ps(), 2000);
        assert_eq!(c.next_edge_after(Time::from_ps(1000)).as_ps(), 2000);
        assert_eq!(c.nth_edge_after(Time::from_ps(1000), 3).as_ps(), 4000);
    }

    #[test]
    fn cycle_counter() {
        let c = Clock::ghz1();
        assert_eq!(c.cycles_at(Time::ZERO), 0);
        assert_eq!(c.cycles_at(Time::from_ps(999)), 0);
        assert_eq!(c.cycles_at(Time::from_ps(1000)), 1);
        assert_eq!(c.cycles_at(Time::from_ps(5500)), 5);
    }

    #[test]
    fn dual_clock_interleave_2to1() {
        // fast 1 GHz (edges 1000, 2000, ...), slow 500 MHz (edges 2000, 4000...)
        let mut dc = DualClock::new(Clock::ghz1(), Clock::from_mhz(500.0));
        let seq: Vec<(u64, EdgeDomain)> = (0..5)
            .map(|_| {
                let (t, d) = dc.next_edge();
                (t.as_ps(), d)
            })
            .collect();
        assert_eq!(
            seq,
            vec![
                (1000, EdgeDomain::Fast),
                (2000, EdgeDomain::Both),
                (3000, EdgeDomain::Fast),
                (4000, EdgeDomain::Both),
                (5000, EdgeDomain::Fast),
            ]
        );
    }

    #[test]
    fn dual_clock_non_integer_ratio() {
        // 1 GHz vs 300 MHz (3333 ps): edges never drift or repeat.
        let mut dc = DualClock::new(Clock::ghz1(), Clock::from_mhz(300.0));
        let mut last = Time::ZERO;
        let mut slow_edges = 0;
        for _ in 0..100 {
            let (t, d) = dc.next_edge();
            assert!(t > last, "time must strictly increase");
            last = t;
            if d.slow() {
                slow_edges += 1;
            }
        }
        assert!(slow_edges > 20 && slow_edges < 30);
    }

    #[test]
    fn advance_to_matches_stepping() {
        // Reference: step edge-by-edge and count; then advance in one jump.
        let mk = || DualClock::new(Clock::ghz1(), Clock::from_mhz(300.0));
        for target_ps in [1000, 1001, 3333, 10_000, 12_345] {
            let target = Time::from_ps(target_ps);
            let mut stepped = mk();
            let mut fast = 0u64;
            let mut slow = 0u64;
            loop {
                let mut probe = stepped.clone();
                let (t, d) = probe.next_edge();
                if t >= target {
                    break;
                }
                stepped = probe;
                if d.fast() {
                    fast += 1;
                }
                if d.slow() {
                    slow += 1;
                }
            }
            let mut jumped = mk();
            assert_eq!(
                jumped.advance_to(target),
                (fast, slow),
                "target {target_ps}"
            );
            // The subsequent edge sequences must be identical.
            for _ in 0..10 {
                assert_eq!(jumped.next_edge(), stepped.next_edge());
            }
        }
    }

    #[test]
    fn advance_to_past_is_noop() {
        let mut dc = DualClock::new(Clock::ghz1(), Clock::from_mhz(500.0));
        let (t, _) = dc.next_edge();
        assert_eq!(dc.advance_to(t), (0, 0));
        assert_eq!(dc.advance_to(Time::ZERO), (0, 0));
        assert_eq!(dc.next_edge().0.as_ps(), 2000);
    }

    #[test]
    fn advance_to_edge_at_target_not_skipped() {
        let mut dc = DualClock::new(Clock::ghz1(), Clock::from_mhz(500.0));
        // Edges before 4000: fast 1000,2000,3000; slow 2000. 4000 itself runs.
        assert_eq!(dc.advance_to(Time::from_ps(4000)), (3, 1));
        let (t, d) = dc.next_edge();
        assert_eq!(t.as_ps(), 4000);
        assert_eq!(d, EdgeDomain::Both);
    }

    #[test]
    fn edge_domain_helpers() {
        assert!(EdgeDomain::Both.fast() && EdgeDomain::Both.slow());
        assert!(EdgeDomain::Fast.fast() && !EdgeDomain::Fast.slow());
        assert!(!EdgeDomain::Slow.fast() && EdgeDomain::Slow.slow());
    }
}
