//! Same-domain and dual-clock (CDC) FIFOs.

use std::collections::VecDeque;

use crate::clock::Clock;
use crate::time::Time;

/// Error returned when pushing into a full FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PushError;

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fifo is full")
    }
}

impl std::error::Error for PushError {}

#[derive(Clone, Debug)]
struct Slot<T> {
    ready_at: Time,
    item: T,
}

/// A bounded, same-clock-domain FIFO with next-cycle visibility.
///
/// An entry pushed at time *t* becomes poppable at `t + latency`. With
/// `latency` equal to one clock period this models a standard synchronous
/// FIFO: a value written on one edge is readable on the next.
///
/// # Example
///
/// ```
/// use duet_sim::{Fifo, Time};
/// let mut f = Fifo::new(2, Time::from_ps(1000));
/// let t = Time::from_ps(1000);
/// f.push(t, 7u32).unwrap();
/// assert!(f.pop(t).is_none());                     // same cycle: not visible
/// assert_eq!(f.pop(t + Time::from_ps(1000)), Some(7));
/// ```
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    capacity: usize,
    latency: Time,
    slots: VecDeque<Slot<T>>,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding up to `capacity` entries, each becoming visible
    /// `latency` after its push.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, latency: Time) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            capacity,
            latency,
            slots: VecDeque::with_capacity(capacity),
        }
    }

    /// Number of entries currently buffered (visible or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the FIFO holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether a push would currently succeed.
    pub fn can_push(&self) -> bool {
        self.slots.len() < self.capacity
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes `item` at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] if the FIFO is full.
    pub fn push(&mut self, now: Time, item: T) -> Result<(), PushError> {
        if !self.can_push() {
            return Err(PushError);
        }
        self.slots.push_back(Slot {
            ready_at: now + self.latency,
            item,
        });
        Ok(())
    }

    /// Peeks at the front entry if it is visible at `now`.
    pub fn front(&self, now: Time) -> Option<&T> {
        self.slots
            .front()
            .filter(|s| s.ready_at <= now)
            .map(|s| &s.item)
    }

    /// Pops the front entry if it is visible at `now`.
    pub fn pop(&mut self, now: Time) -> Option<T> {
        if self.slots.front().is_some_and(|s| s.ready_at <= now) {
            self.slots.pop_front().map(|s| s.item)
        } else {
            None
        }
    }

    /// The time at which the front entry becomes visible to `pop`, if any
    /// entry is buffered. Used by event-horizon scheduling to bound the next
    /// time this FIFO can make progress.
    pub fn front_ready_at(&self) -> Option<Time> {
        self.slots.front().map(|s| s.ready_at)
    }

    /// Drains every entry regardless of visibility (used on reset/flush).
    pub fn clear(&mut self) {
        self.slots.clear();
    }

    /// Iterates over all buffered items front-to-back, ignoring visibility.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &s.item)
    }
}

#[derive(Clone, Copy, Debug)]
struct PopRecord {
    /// When the freed space becomes visible to the producer.
    producer_sees_at: Time,
}

/// A dual-clock FIFO modelling a Gray-coded, `sync_stages`-deep synchronizer
/// in each direction (Sec. IV of the paper: "All the asynchronous FIFOs are
/// implemented with dual-clock RAMs and Gray-coded, 2-stage synchronizers").
///
/// * An entry pushed at time *t* becomes visible to the consumer at the
///   `sync_stages`-th consumer-clock edge strictly after *t*.
/// * The space freed by a pop at time *t* becomes visible to the producer at
///   the `sync_stages`-th producer-clock edge strictly after *t*; until then
///   the slot still counts against `capacity` on the producer side.
///
/// This is the one and only source of clock-domain-crossing cost in the whole
/// simulator, making CDC overhead attributable (Fig. 9's breakdown).
#[derive(Clone, Debug)]
pub struct AsyncFifo<T> {
    capacity: usize,
    sync_stages: u32,
    producer_clock: Clock,
    consumer_clock: Clock,
    slots: VecDeque<Slot<T>>,
    pending_pops: VecDeque<PopRecord>,
}

impl<T> AsyncFifo<T> {
    /// Creates an async FIFO with the given `capacity` and synchronizer depth.
    ///
    /// `producer_clock` is the domain of the pushing side, `consumer_clock`
    /// of the popping side.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `sync_stages` is zero.
    pub fn new(
        capacity: usize,
        sync_stages: u32,
        producer_clock: Clock,
        consumer_clock: Clock,
    ) -> Self {
        assert!(capacity > 0, "async fifo capacity must be non-zero");
        assert!(sync_stages > 0, "synchronizer must have at least one stage");
        AsyncFifo {
            capacity,
            sync_stages,
            producer_clock,
            consumer_clock,
            slots: VecDeque::with_capacity(capacity),
            pending_pops: VecDeque::new(),
        }
    }

    /// Reconfigures the consumer clock (used when the programmable clock
    /// generator in the Control Hub changes the eFPGA frequency). Entries
    /// already in flight keep their original visibility times.
    pub fn set_consumer_clock(&mut self, clock: Clock) {
        self.consumer_clock = clock;
    }

    /// Reconfigures the producer clock.
    pub fn set_producer_clock(&mut self, clock: Clock) {
        self.producer_clock = clock;
    }

    /// The consumer-domain clock.
    pub fn consumer_clock(&self) -> Clock {
        self.consumer_clock
    }

    /// The producer-domain clock.
    pub fn producer_clock(&self) -> Clock {
        self.producer_clock
    }

    /// Entries buffered (whether or not visible to the consumer).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether no entries are buffered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Occupancy as seen by the producer at `now`: current entries plus
    /// freed-but-not-yet-synchronized slots.
    pub fn producer_occupancy(&self, now: Time) -> usize {
        let unseen_frees = self
            .pending_pops
            .iter()
            .filter(|p| p.producer_sees_at > now)
            .count();
        self.slots.len() + unseen_frees
    }

    /// Whether the producer can push at `now`.
    pub fn can_push(&self, now: Time) -> bool {
        self.producer_occupancy(now) < self.capacity
    }

    /// Pushes `item` at producer time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] if the FIFO appears full to the producer.
    pub fn push(&mut self, now: Time, item: T) -> Result<(), PushError> {
        if !self.can_push(now) {
            return Err(PushError);
        }
        let ready_at = self.consumer_clock.nth_edge_after(now, self.sync_stages);
        self.slots.push_back(Slot { ready_at, item });
        Ok(())
    }

    /// Peeks at the front entry if visible to the consumer at `now`.
    pub fn front(&self, now: Time) -> Option<&T> {
        self.slots
            .front()
            .filter(|s| s.ready_at <= now)
            .map(|s| &s.item)
    }

    /// Time at which the front entry becomes consumer-visible, if any entry
    /// is buffered.
    pub fn front_ready_at(&self) -> Option<Time> {
        self.slots.front().map(|s| s.ready_at)
    }

    /// Pops the front entry if visible to the consumer at `now`.
    pub fn pop(&mut self, now: Time) -> Option<T> {
        if self.slots.front().is_some_and(|s| s.ready_at <= now) {
            // Garbage-collect pop records the producer has already seen.
            while self
                .pending_pops
                .front()
                .is_some_and(|p| p.producer_sees_at <= now)
            {
                self.pending_pops.pop_front();
            }
            self.pending_pops.push_back(PopRecord {
                producer_sees_at: self.producer_clock.nth_edge_after(now, self.sync_stages),
            });
            self.slots.pop_front().map(|s| s.item)
        } else {
            None
        }
    }

    /// Drains all entries regardless of visibility (reset/flush).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.pending_pops.clear();
    }

    /// Iterates over all buffered items front-to-back, ignoring visibility.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().map(|s| &s.item)
    }
}

impl<T: crate::snapshot::Pack> crate::snapshot::Snap for Fifo<T> {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Pack;
        w.len64(self.capacity);
        self.latency.pack(w);
        w.len64(self.slots.len());
        for s in &self.slots {
            s.ready_at.pack(w);
            s.item.pack(w);
        }
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::Pack;
        if r.len64()? != self.capacity {
            return Err(crate::snapshot::SnapError::Corrupt(
                "fifo capacity mismatch",
            ));
        }
        self.latency = Time::unpack(r)?;
        let n = r.len64()?;
        self.slots.clear();
        for _ in 0..n {
            let ready_at = Time::unpack(r)?;
            let item = T::unpack(r)?;
            self.slots.push_back(Slot { ready_at, item });
        }
        Ok(())
    }
}

impl<T: crate::snapshot::Pack> crate::snapshot::Snap for AsyncFifo<T> {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Pack;
        w.len64(self.capacity);
        w.u32(self.sync_stages);
        // Clocks are mutable state: the Control Hub can reprogram the
        // eFPGA clock mid-run.
        self.producer_clock.pack(w);
        self.consumer_clock.pack(w);
        w.len64(self.slots.len());
        for s in &self.slots {
            s.ready_at.pack(w);
            s.item.pack(w);
        }
        w.len64(self.pending_pops.len());
        for p in &self.pending_pops {
            p.producer_sees_at.pack(w);
        }
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::Pack;
        if r.len64()? != self.capacity {
            return Err(crate::snapshot::SnapError::Corrupt(
                "async fifo capacity mismatch",
            ));
        }
        if r.u32()? != self.sync_stages {
            return Err(crate::snapshot::SnapError::Corrupt(
                "async fifo sync stages mismatch",
            ));
        }
        self.producer_clock = Clock::unpack(r)?;
        self.consumer_clock = Clock::unpack(r)?;
        let n = r.len64()?;
        self.slots.clear();
        for _ in 0..n {
            let ready_at = Time::unpack(r)?;
            let item = T::unpack(r)?;
            self.slots.push_back(Slot { ready_at, item });
        }
        let n = r.len64()?;
        self.pending_pops.clear();
        for _ in 0..n {
            self.pending_pops.push_back(PopRecord {
                producer_sees_at: Time::unpack(r)?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    #[test]
    fn fifo_next_cycle_visibility() {
        let mut f = Fifo::new(4, ps(1000));
        f.push(ps(1000), 1u32).unwrap();
        f.push(ps(1000), 2u32).unwrap();
        assert_eq!(f.pop(ps(1000)), None);
        assert_eq!(f.front(ps(2000)), Some(&1));
        assert_eq!(f.pop(ps(2000)), Some(1));
        assert_eq!(f.pop(ps(2000)), Some(2));
        assert_eq!(f.pop(ps(2000)), None);
    }

    #[test]
    fn fifo_capacity() {
        let mut f = Fifo::new(2, ps(0));
        assert!(f.can_push());
        f.push(ps(0), 1u8).unwrap();
        f.push(ps(0), 2u8).unwrap();
        assert!(!f.can_push());
        assert_eq!(f.push(ps(0), 3u8), Err(PushError));
        assert_eq!(f.len(), 2);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn fifo_preserves_order() {
        let mut f = Fifo::new(16, ps(1000));
        for i in 0..10u32 {
            f.push(ps(1000 + u64::from(i) * 1000), i).unwrap();
        }
        let mut out = Vec::new();
        while let Some(v) = f.pop(ps(100_000)) {
            out.push(v);
        }
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn async_fifo_cdc_latency_fast_to_slow() {
        // Producer: 1 GHz. Consumer: 100 MHz (edges 10_000, 20_000, ...).
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut f = AsyncFifo::new(8, 2, fast, slow);
        // Push at t=1000: next slow edges after are 10_000 and 20_000.
        f.push(ps(1000), 9u64).unwrap();
        assert_eq!(f.pop(ps(10_000)), None);
        assert_eq!(f.pop(ps(19_999)), None);
        assert_eq!(f.pop(ps(20_000)), Some(9));
    }

    #[test]
    fn async_fifo_cdc_latency_slow_to_fast() {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut f = AsyncFifo::new(8, 2, slow, fast);
        // Push at slow edge t=10_000: fast edges after are 11_000 and 12_000.
        f.push(ps(10_000), 5u8).unwrap();
        assert_eq!(f.pop(ps(11_000)), None);
        assert_eq!(f.pop(ps(12_000)), Some(5));
    }

    #[test]
    fn async_fifo_backpressure_includes_unsynchronized_frees() {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut f = AsyncFifo::new(1, 2, fast, slow);
        f.push(ps(1000), 1u8).unwrap();
        assert!(!f.can_push(ps(2000)));
        // Consumer pops at 20_000; producer sees the free slot only two fast
        // edges later (22_000).
        assert_eq!(f.pop(ps(20_000)), Some(1));
        assert!(!f.can_push(ps(20_000)));
        assert!(!f.can_push(ps(21_000)));
        assert!(f.can_push(ps(22_000)));
    }

    #[test]
    fn async_fifo_in_order_delivery() {
        // The proxy-cache protocol depends on FIFO order across the boundary.
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(333.0);
        let mut f = AsyncFifo::new(64, 2, fast, slow);
        for i in 0..50u32 {
            f.push(ps(1000 * (u64::from(i) + 1)), i).unwrap();
        }
        let mut out = Vec::new();
        let mut t = ps(0);
        while out.len() < 50 {
            t += ps(500);
            if let Some(v) = f.pop(t) {
                out.push(v);
            }
        }
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn async_fifo_pop_exactly_at_synchronizer_boundary() {
        // An entry pushed at t must be invisible at the 1st consumer edge
        // strictly after t, and become poppable at exactly the 2nd — not a
        // picosecond earlier.
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(250.0); // slow edges at 4000, 8000, ...
        let mut f = AsyncFifo::new(4, 2, fast, slow);
        // Push exactly ON a consumer edge: edges *strictly after* 4000 are
        // 8000 and 12000, so the push's own edge must not count as a stage.
        f.push(ps(4000), 1u8).unwrap();
        assert_eq!(f.front_ready_at(), Some(ps(12_000)));
        assert_eq!(f.pop(ps(11_999)), None);
        assert_eq!(f.front(ps(12_000)), Some(&1));
        assert_eq!(f.pop(ps(12_000)), Some(1));
        // Freed space: producer edges strictly after 12_000 are 13_000 and
        // 14_000 — the free is invisible at 13_999 and visible at 14_000, so
        // until then the popped slot still counts against capacity.
        f.push(ps(12_000), 2u8).unwrap();
        f.push(ps(12_000), 3u8).unwrap();
        f.push(ps(12_000), 4u8).unwrap();
        assert_eq!(f.push(ps(13_999), 5u8), Err(PushError));
        assert_eq!(f.producer_occupancy(ps(13_999)), 3 + 1);
        assert_eq!(f.producer_occupancy(ps(14_000)), 3);
        f.push(ps(14_000), 5u8).unwrap();
    }

    #[test]
    fn async_fifo_unit_clock_ratio() {
        // Producer and consumer on the *same* clock (ratio 1): the CDC still
        // costs sync_stages edges in each direction — the synchronizer does
        // not degenerate into a plain FIFO.
        let clk = Clock::ghz1(); // edges at 1000, 2000, ...
        let mut f = AsyncFifo::new(2, 2, clk, clk);
        f.push(ps(1000), 7u32).unwrap();
        assert_eq!(f.pop(ps(2000)), None, "one edge is not enough");
        assert_eq!(f.pop(ps(3000)), Some(7));
        // The freed slot is producer-visible only at 5000 (two edges after
        // the pop), so a second push at 4000 sees occupancy 1 + 1 = full.
        f.push(ps(4000), 8u32).unwrap();
        assert_eq!(f.push(ps(4000), 9u32), Err(PushError));
        f.push(ps(5000), 9u32).unwrap(); // full: 2 slots occupied
        assert!(!f.can_push(ps(5000)));
        assert_eq!(f.pop(ps(7000)), Some(8));
        assert!(!f.can_push(ps(8000)), "free not yet synchronized");
        assert!(f.can_push(ps(9000)));
    }

    #[test]
    fn async_fifo_full_fifo_backpressure() {
        // Fill to capacity; every further push must be rejected without
        // corrupting order, and draining reopens exactly one slot per pop
        // (after synchronization).
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut f = AsyncFifo::new(3, 2, fast, slow);
        for i in 0..3u8 {
            f.push(ps(1000 + u64::from(i)), i).unwrap();
        }
        assert!(!f.can_push(ps(2000)));
        assert_eq!(f.push(ps(2000), 99), Err(PushError));
        assert_eq!(f.len(), 3);
        // Consumer drains one at 20_000; producer sees the slot at 22_000.
        assert_eq!(f.pop(ps(20_000)), Some(0));
        assert_eq!(f.push(ps(21_000), 99), Err(PushError));
        f.push(ps(22_000), 3).unwrap();
        assert_eq!(f.push(ps(22_000), 99), Err(PushError));
        // Order survives the backpressure episode.
        let mut out = Vec::new();
        let mut t = ps(22_000);
        while out.len() < 3 {
            t += ps(10_000);
            while let Some(v) = f.pop(t) {
                out.push(v);
            }
        }
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn async_fifo_reclocking() {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(50.0);
        let mut f = AsyncFifo::new(4, 2, fast, slow);
        assert_eq!(f.consumer_clock().period().as_ps(), 20_000);
        f.set_consumer_clock(Clock::from_mhz(500.0));
        f.push(ps(1000), 3u8).unwrap();
        // New consumer clock: edges every 2000 ps -> visible at 6000... edges
        // after 1000 are 2000 and 4000.
        assert_eq!(f.pop(ps(4000)), Some(3));
    }
}
