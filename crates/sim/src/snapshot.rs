//! Versioned binary snapshots of simulation state.
//!
//! Every stateful crate in the workspace implements [`Snap`] for its
//! components so a whole `System` can be checkpointed mid-run and
//! restored — in the same process or a fresh one — with bit-identical
//! continuation (same fingerprints, metrics, and traces as an
//! uninterrupted run). The format is deliberately simple and loud:
//!
//! * a fixed magic (`DUETSNP\0`) and a [`FORMAT_VERSION`], so readers
//!   from a different format generation fail with a typed error rather
//!   than misinterpreting bytes;
//! * a 64-bit configuration hash — the snapshot carries *state only*,
//!   never structure, so restore requires a `System` rebuilt from the
//!   exact same `SystemConfig` (the hash is checked before any section
//!   is read);
//! * tagged, length-prefixed sections: each component's state is framed
//!   by a 4-byte ASCII tag and a byte length, and the reader verifies
//!   both the tag and that the section was consumed exactly — a
//!   component whose layout drifted produces [`SnapError::TagMismatch`]
//!   or [`SnapError::TrailingBytes`], never a silent misparse.
//!
//! Two traits split the work:
//!
//! * [`Pack`] — self-describing *values* (integers, times, messages,
//!   containers of packable things) that can be written and
//!   reconstructed from bytes alone.
//! * [`Snap`] — *components* that are rebuilt from configuration and
//!   then overwritten in place: `save` serializes the mutable state,
//!   `load` restores it into an already-constructed instance.
//!
//! All encodings are little-endian and fixed-width; there is no
//! varint layer, because snapshots are a cold path and debuggability
//! beats density.

use std::collections::{BTreeMap, VecDeque};

use crate::time::Time;

/// Leading magic bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"DUETSNP\0";

/// Current snapshot format version. Bump on any layout change.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The snapshot was written by a different format generation.
    Version {
        /// Version found in the snapshot.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The snapshot was taken under a different `SystemConfig`.
    ConfigHash {
        /// Hash found in the snapshot.
        found: u64,
        /// Hash of the restoring system's config.
        expected: u64,
    },
    /// A section tag did not match the component being restored.
    TagMismatch {
        /// Tag found in the snapshot.
        found: [u8; 4],
        /// Tag the reader expected.
        expected: [u8; 4],
    },
    /// The buffer ended before the declared data did.
    Truncated,
    /// A section's body was not fully consumed by its reader.
    TrailingBytes {
        /// Tag of the offending section.
        tag: [u8; 4],
        /// Bytes left unread inside the section.
        unread: usize,
    },
    /// A decoded value was structurally invalid.
    Corrupt(&'static str),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a Duet snapshot (bad magic)"),
            SnapError::Version { found, expected } => write!(
                f,
                "snapshot format version {found} (this reader understands {expected})"
            ),
            SnapError::ConfigHash { found, expected } => write!(
                f,
                "snapshot config hash {found:#018x} does not match system config {expected:#018x}"
            ),
            SnapError::TagMismatch { found, expected } => write!(
                f,
                "section tag {:?} where {:?} was expected",
                String::from_utf8_lossy(found),
                String::from_utf8_lossy(expected)
            ),
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::TrailingBytes { tag, unread } => write!(
                f,
                "section {:?} left {unread} bytes unread",
                String::from_utf8_lossy(tag)
            ),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Streaming writer producing a snapshot byte buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer (no header). Useful for unit tests and nested
    /// value encoding.
    pub fn new() -> Self {
        SnapWriter { buf: Vec::new() }
    }

    /// A writer primed with the standard header: magic, format version,
    /// and the configuration hash.
    pub fn with_header(config_hash: u64) -> Self {
        SnapWriter::with_custom_header(MAGIC, FORMAT_VERSION, config_hash)
    }

    /// A writer primed with a caller-chosen header in the standard
    /// framing (8-byte magic, `u32` version, `u64` hash). Lets other
    /// on-disk artifacts — the serve layer's result-store segments, for
    /// one — reuse the snapshot header discipline under their own magic.
    pub fn with_custom_header(magic: [u8; 8], version: u32, hash: u64) -> Self {
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(&magic);
        w.u32(version);
        w.u64(hash);
        w
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn len64(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a tagged, length-prefixed section whose body is produced
    /// by `f`. Sections may nest.
    pub fn section(&mut self, tag: [u8; 4], f: impl FnOnce(&mut Self)) {
        self.buf.extend_from_slice(&tag);
        let len_at = self.buf.len();
        self.u64(0); // placeholder
        let body_start = self.buf.len();
        f(self);
        let body_len = (self.buf.len() - body_start) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Consumes the writer, returning the snapshot bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Streaming reader over a snapshot byte buffer.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Exclusive upper bound of the region the reader may touch; shrinks
    /// while inside a section.
    limit: usize,
}

impl<'a> SnapReader<'a> {
    /// A reader over raw (headerless) bytes.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader {
            buf,
            pos: 0,
            limit: buf.len(),
        }
    }

    /// A reader that first validates the standard header (magic, format
    /// version, config hash) against `expected_config_hash`.
    pub fn with_header(buf: &'a [u8], expected_config_hash: u64) -> Result<Self, SnapError> {
        SnapReader::with_custom_header(buf, MAGIC, FORMAT_VERSION, expected_config_hash)
    }

    /// A reader that validates a caller-chosen header in the standard
    /// framing (the [`SnapWriter::with_custom_header`] counterpart).
    /// Mismatches are the same typed errors snapshot loading produces.
    pub fn with_custom_header(
        buf: &'a [u8],
        magic: [u8; 8],
        expected_version: u32,
        expected_hash: u64,
    ) -> Result<Self, SnapError> {
        let mut r = SnapReader::new(buf);
        let found_magic = r.take(magic.len())?;
        if found_magic != magic {
            return Err(SnapError::BadMagic);
        }
        let version = r.u32()?;
        if version != expected_version {
            return Err(SnapError::Version {
                found: version,
                expected: expected_version,
            });
        }
        let hash = r.u64()?;
        if hash != expected_hash {
            return Err(SnapError::ConfigHash {
                found: hash,
                expected: expected_hash,
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.pos + n > self.limit {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a `u64` and converts it to `usize`.
    pub fn len64(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("length exceeds usize"))
    }

    /// Enters a tagged section: verifies the tag, bounds the reader to
    /// the section body for the duration of `f`, and verifies the body
    /// was consumed exactly.
    pub fn section<T>(
        &mut self,
        tag: [u8; 4],
        f: impl FnOnce(&mut Self) -> Result<T, SnapError>,
    ) -> Result<T, SnapError> {
        let found = self.take(4)?;
        if found != tag {
            let mut t = [0u8; 4];
            t.copy_from_slice(found);
            return Err(SnapError::TagMismatch {
                found: t,
                expected: tag,
            });
        }
        let body_len = self.len64()?;
        if self.pos + body_len > self.limit {
            return Err(SnapError::Truncated);
        }
        let outer_limit = self.limit;
        self.limit = self.pos + body_len;
        let result = f(self);
        let end = self.limit;
        self.limit = outer_limit;
        let value = result?;
        if self.pos != end {
            return Err(SnapError::TrailingBytes {
                tag,
                unread: end - self.pos,
            });
        }
        Ok(value)
    }

    /// Bytes remaining inside the current bound.
    pub fn remaining(&self) -> usize {
        self.limit - self.pos
    }

    /// Fails with [`SnapError::TrailingBytes`] unless the whole buffer
    /// was consumed (call after the last section at top level).
    pub fn expect_end(&self) -> Result<(), SnapError> {
        if self.pos != self.limit {
            return Err(SnapError::TrailingBytes {
                tag: *b"END_",
                unread: self.limit - self.pos,
            });
        }
        Ok(())
    }
}

/// A value that can be written to and reconstructed from snapshot bytes.
pub trait Pack: Sized {
    /// Writes `self`.
    fn pack(&self, w: &mut SnapWriter);
    /// Reads a value.
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError>;
}

/// A component whose identity comes from configuration and whose mutable
/// state is saved and restored in place.
pub trait Snap {
    /// Serializes the mutable state.
    fn save(&self, w: &mut SnapWriter);
    /// Restores the mutable state into `self` (which was rebuilt from
    /// the same configuration the snapshot was taken under).
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError>;
}

/// Every packable value is trivially snappable by overwrite.
impl<T: Pack> Snap for T {
    fn save(&self, w: &mut SnapWriter) {
        self.pack(w);
    }
    fn load(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        *self = T::unpack(r)?;
        Ok(())
    }
}

impl Pack for u8 {
    fn pack(&self, w: &mut SnapWriter) {
        w.u8(*self);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u8()
    }
}

impl Pack for u16 {
    fn pack(&self, w: &mut SnapWriter) {
        w.bytes(&self.to_le_bytes());
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let b = r.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
}

impl Pack for u32 {
    fn pack(&self, w: &mut SnapWriter) {
        w.u32(*self);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u32()
    }
}

impl Pack for u64 {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(*self);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.u64()
    }
}

impl Pack for usize {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(*self);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        r.len64()
    }
}

impl Pack for i64 {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(*self as u64);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(r.u64()? as i64)
    }
}

impl Pack for bool {
    fn pack(&self, w: &mut SnapWriter) {
        w.u8(u8::from(*self));
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool out of range")),
        }
    }
}

impl Pack for f64 {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.to_bits());
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(r.u64()?))
    }
}

impl Pack for Time {
    fn pack(&self, w: &mut SnapWriter) {
        w.u64(self.as_ps());
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(Time::from_ps(r.u64()?))
    }
}

impl<T: Pack> Pack for Option<T> {
    fn pack(&self, w: &mut SnapWriter) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.pack(w);
            }
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::unpack(r)?)),
            _ => Err(SnapError::Corrupt("Option discriminant out of range")),
        }
    }
}

impl<T: Pack> Pack for Vec<T> {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.len());
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len64()?;
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(T::unpack(r)?);
        }
        Ok(out)
    }
}

impl<T: Pack> Pack for VecDeque<T> {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.len());
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len64()?;
        let mut out = VecDeque::new();
        for _ in 0..n {
            out.push_back(T::unpack(r)?);
        }
        Ok(out)
    }
}

impl<K: Pack + Ord, V: Pack> Pack for BTreeMap<K, V> {
    /// Entries are written in key order (the map's iteration order), so the
    /// encoding is canonical: equal maps produce equal bytes.
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.len());
        for (k, v) in self {
            k.pack(w);
            v.pack(w);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len64()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::unpack(r)?;
            let v = V::unpack(r)?;
            if out.insert(k, v).is_some() {
                return Err(SnapError::Corrupt("duplicate BTreeMap key"));
            }
        }
        Ok(out)
    }
}

impl Pack for String {
    fn pack(&self, w: &mut SnapWriter) {
        w.len64(self.len());
        w.bytes(self.as_bytes());
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let n = r.len64()?;
        let b = r.bytes(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::Corrupt("string not UTF-8"))
    }
}

impl<T: Pack + Copy + Default, const N: usize> Pack for [T; N] {
    fn pack(&self, w: &mut SnapWriter) {
        for v in self {
            v.pack(w);
        }
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut out = [T::default(); N];
        for slot in out.iter_mut() {
            *slot = T::unpack(r)?;
        }
        Ok(out)
    }
}

impl<A: Pack, B: Pack> Pack for (A, B) {
    fn pack(&self, w: &mut SnapWriter) {
        self.0.pack(w);
        self.1.pack(w);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unpack(r)?, B::unpack(r)?))
    }
}

impl<A: Pack, B: Pack, C: Pack> Pack for (A, B, C) {
    fn pack(&self, w: &mut SnapWriter) {
        self.0.pack(w);
        self.1.pack(w);
        self.2.pack(w);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unpack(r)?, B::unpack(r)?, C::unpack(r)?))
    }
}

impl<A: Pack, B: Pack, C: Pack, D: Pack> Pack for (A, B, C, D) {
    fn pack(&self, w: &mut SnapWriter) {
        self.0.pack(w);
        self.1.pack(w);
        self.2.pack(w);
        self.3.pack(w);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok((A::unpack(r)?, B::unpack(r)?, C::unpack(r)?, D::unpack(r)?))
    }
}

impl Pack for () {
    /// Zero bytes — lets `()`-metadata containers (timing-only cache tag
    /// arrays) reuse the generic container impls.
    fn pack(&self, _w: &mut SnapWriter) {}
    fn unpack(_r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(())
    }
}

impl Pack for crate::stats::LatencyBreakdown {
    fn pack(&self, w: &mut SnapWriter) {
        self.noc.pack(w);
        self.cache_fast.pack(w);
        self.cache_slow.pack(w);
        self.cdc.pack(w);
    }
    fn unpack(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(crate::stats::LatencyBreakdown {
            noc: Time::unpack(r)?,
            cache_fast: Time::unpack(r)?,
            cache_slow: Time::unpack(r)?,
            cdc: Time::unpack(r)?,
        })
    }
}

/// Streaming 64-bit hasher for configuration fingerprints, built on the
/// same fixed SplitMix64-style mixer as [`crate::storage::LineMap`]. Not
/// cryptographic — it only needs to make accidental config mismatches
/// loud, deterministically, on every platform.
#[derive(Clone, Debug)]
pub struct SnapHasher {
    state: u64,
}

impl Default for SnapHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapHasher {
    /// A fresh hasher with a fixed non-zero seed.
    pub fn new() -> Self {
        SnapHasher {
            state: 0xD0E7_5EED_0000_0001,
        }
    }

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Folds a `u64` into the state.
    pub fn u64(&mut self, v: u64) {
        self.state = Self::mix(self.state ^ v);
    }

    /// Folds a `usize` into the state.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Folds a `bool` into the state.
    pub fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    /// Folds an `f64`'s bit pattern into the state.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Folds raw bytes (length-prefixed) into the state.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        for chunk in b.chunks(8) {
            let mut a = [0u8; 8];
            a[..chunk.len()].copy_from_slice(chunk);
            self.u64(u64::from_le_bytes(a));
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        Self::mix(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = SnapWriter::new();
        0xABu8.pack(&mut w);
        0xBEEFu16.pack(&mut w);
        0xDEAD_BEEFu32.pack(&mut w);
        u64::MAX.pack(&mut w);
        (-5i64).pack(&mut w);
        true.pack(&mut w);
        1.5f64.pack(&mut w);
        Time::from_ns(7).pack(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(u8::unpack(&mut r).unwrap(), 0xAB);
        assert_eq!(u16::unpack(&mut r).unwrap(), 0xBEEF);
        assert_eq!(u32::unpack(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::unpack(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::unpack(&mut r).unwrap(), -5);
        assert!(bool::unpack(&mut r).unwrap());
        assert_eq!(f64::unpack(&mut r).unwrap(), 1.5);
        assert_eq!(Time::unpack(&mut r).unwrap(), Time::from_ns(7));
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn container_roundtrip() {
        let mut w = SnapWriter::new();
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<(u32, bool)> = VecDeque::from(vec![(7, true), (9, false)]);
        let o: Option<String> = Some("hi".to_string());
        let n: Option<u8> = None;
        let a: [u8; 16] = *b"0123456789abcdef";
        v.pack(&mut w);
        d.pack(&mut w);
        o.pack(&mut w);
        n.pack(&mut w);
        a.pack(&mut w);
        let bytes = w.finish();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(Vec::<u64>::unpack(&mut r).unwrap(), v);
        assert_eq!(VecDeque::<(u32, bool)>::unpack(&mut r).unwrap(), d);
        assert_eq!(Option::<String>::unpack(&mut r).unwrap(), o);
        assert_eq!(Option::<u8>::unpack(&mut r).unwrap(), n);
        assert_eq!(<[u8; 16]>::unpack(&mut r).unwrap(), a);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn header_checks_magic_version_and_hash() {
        let bytes = SnapWriter::with_header(42).finish();
        assert!(SnapReader::with_header(&bytes, 42).is_ok());
        assert_eq!(
            SnapReader::with_header(&bytes, 43).unwrap_err(),
            SnapError::ConfigHash {
                found: 42,
                expected: 43
            }
        );
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            SnapReader::with_header(&bad, 42).unwrap_err(),
            SnapError::BadMagic
        );
        let mut newer = bytes.clone();
        newer[8] = (FORMAT_VERSION + 1) as u8;
        assert_eq!(
            SnapReader::with_header(&newer, 42).unwrap_err(),
            SnapError::Version {
                found: FORMAT_VERSION + 1,
                expected: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn sections_frame_and_verify_consumption() {
        let mut w = SnapWriter::new();
        w.section(*b"AAAA", |w| {
            7u64.pack(w);
        });
        w.section(*b"BBBB", |w| {
            w.section(*b"CCCC", |w| 3u32.pack(w));
        });
        let bytes = w.finish();

        let mut r = SnapReader::new(&bytes);
        let v = r.section(*b"AAAA", |r| u64::unpack(r)).unwrap();
        assert_eq!(v, 7);
        let inner = r
            .section(*b"BBBB", |r| r.section(*b"CCCC", |r| u32::unpack(r)))
            .unwrap();
        assert_eq!(inner, 3);
        assert!(r.expect_end().is_ok());

        // Wrong tag is typed.
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.section(*b"XXXX", |r| u64::unpack(r)).unwrap_err(),
            SnapError::TagMismatch {
                found: *b"AAAA",
                expected: *b"XXXX"
            }
        );

        // Under-consuming a section is typed.
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.section(*b"AAAA", |r| u32::unpack(r)).unwrap_err(),
            SnapError::TrailingBytes {
                tag: *b"AAAA",
                unread: 4
            }
        );

        // Over-reading a section hits its bound, not the next section.
        let mut r = SnapReader::new(&bytes);
        assert_eq!(
            r.section(*b"AAAA", |r| <(u64, u64)>::unpack(r))
                .unwrap_err(),
            SnapError::Truncated
        );
    }

    #[test]
    fn truncation_is_loud() {
        let mut w = SnapWriter::new();
        w.section(*b"AAAA", |w| {
            vec![1u64, 2, 3].pack(w);
        });
        let bytes = w.finish();
        for cut in 1..bytes.len() {
            let mut r = SnapReader::new(&bytes[..cut]);
            let res = r.section(*b"AAAA", |r| Vec::<u64>::unpack(r));
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn hasher_is_deterministic_and_sensitive() {
        let mut a = SnapHasher::new();
        a.u64(1);
        a.bytes(b"duet");
        a.bool(true);
        let mut b = SnapHasher::new();
        b.u64(1);
        b.bytes(b"duet");
        b.bool(true);
        assert_eq!(a.finish(), b.finish());
        let mut c = SnapHasher::new();
        c.u64(1);
        c.bytes(b"duet");
        c.bool(false);
        assert_ne!(a.finish(), c.finish());
        // Length prefix keeps concatenation ambiguity out.
        let mut d = SnapHasher::new();
        d.bytes(b"ab");
        d.bytes(b"c");
        let mut e = SnapHasher::new();
        e.bytes(b"a");
        e.bytes(b"bc");
        assert_ne!(d.finish(), e.finish());
    }

    #[test]
    fn snap_blanket_impl_overwrites_in_place() {
        let mut w = SnapWriter::new();
        99u64.save(&mut w);
        let bytes = w.finish();
        let mut v = 0u64;
        let mut r = SnapReader::new(&bytes);
        v.load(&mut r).unwrap();
        assert_eq!(v, 99);
    }
}
