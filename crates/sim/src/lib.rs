#![warn(missing_docs)]
//! # duet-sim
//!
//! Deterministic, dual-clock-domain, discrete-time simulation engine used by
//! every other crate in this workspace.
//!
//! The engine models time in **picoseconds** ([`Time`]) and clocks as
//! period/offset pairs ([`Clock`]). Components are plain structs ticked by
//! their owner on the edges of the clock domain they belong to; the
//! [`DualClock`] iterator yields the interleaved edge sequence of the fast
//! (processor) and slow (eFPGA) domains.
//!
//! Communication between components in the *same* domain uses [`Fifo`], which
//! enforces next-cycle visibility (a value written on edge *k* is readable on
//! edge *k+1* at the earliest, like a hardware FIFO). Communication *across*
//! domains uses [`AsyncFifo`], which models a Gray-coded, multi-stage
//! synchronizer: an entry pushed at time *t* becomes visible to the consumer
//! only after `sync_stages` consumer-clock edges strictly after *t*, and the
//! space freed by a pop becomes visible to the producer only after
//! `sync_stages` producer-clock edges. This single type is the source of all
//! clock-domain-crossing (CDC) cost in the Duet model.
//!
//! On top of the raw queues sits the **component graph** layer: ticking
//! structures implement [`Component`] (tick / `next_event_time` / `is_active`
//! / clock domain), and every edge between them is a typed, instrumented
//! [`Link`] — synchronous FIFO, CDC crossing, or explicitly-timed pipe — that
//! counts occupancy and backpressure stalls. The shared [`Horizon`]
//! accumulator merges per-component event times for the event-horizon
//! scheduler.
//!
//! # Example
//!
//! ```
//! use duet_sim::{Clock, AsyncFifo};
//!
//! let fast = Clock::ghz1();                 // 1 GHz system clock
//! let slow = Clock::from_mhz(100.0);        // 100 MHz eFPGA clock
//! let mut fifo: AsyncFifo<u64> = AsyncFifo::new(4, 2, fast, slow);
//!
//! let t0 = fast.first_edge();
//! fifo.push(t0, 42).unwrap();
//! // Not yet visible: fewer than 2 slow edges have passed.
//! assert!(fifo.pop(t0).is_none());
//! let visible = slow.nth_edge_after(t0, 2);
//! assert_eq!(fifo.pop(visible), Some(42));
//! ```

pub mod clock;
pub mod component;
pub mod fifo;
pub mod horizon;
pub mod link;
pub mod rng;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod storage;
pub mod time;

pub use clock::{Clock, DualClock, EdgeDomain};
pub use component::{ClockDomain, Component};
pub use fifo::{AsyncFifo, Fifo, PushError};
pub use horizon::{merge_min, Horizon};
pub use link::{Link, LinkReport, LinkStats};
pub use rng::SimRng;
pub use shard::{partition_balanced, EpochBarrier, LoadEwma};
pub use snapshot::{Pack, Snap, SnapError, SnapHasher, SnapReader, SnapWriter};
pub use stats::{Counter, LatencyBreakdown, RunningStats};
pub use storage::{IdSlab, LineMap, PagedMem};
pub use time::Time;
