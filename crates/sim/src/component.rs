//! The `Component` trait: the unit node of the simulated hardware graph.
//!
//! Every ticking structure in the system — cores, caches, directory shards,
//! the mesh, the adapter hubs — implements [`Component`]. The trait captures
//! exactly the contract the event-horizon scheduler (PR 1) relies on:
//!
//! * [`Component::tick`] advances the component by one edge of its clock
//!   domain.
//! * [`Component::next_event_time`] is a *conservative* lower bound on the
//!   next time the component can do observable work. Returning `None` means
//!   "idle until externally poked"; returning `Some(t)` with `t <= now` means
//!   "has work on this very edge". Skipping every edge strictly before the
//!   reported time must be provably unobservable.
//! * [`Component::is_active`] is the cheap boolean form of the same question,
//!   used by per-edge gating.
//!
//! Components expose their [`Link`](crate::link::Link) endpoints through
//! [`Component::visit_links`], which is how the system-level registry gathers
//! per-link occupancy and stall counters without each layer hand-exporting
//! its buffers.

use crate::link::LinkReport;
use crate::time::Time;

/// Which clock domain a component's `tick` is driven by.
///
/// The fast domain is the processor/NoC/cache side (1 GHz in the paper's
/// Dolly SoC); the slow domain is the eFPGA fabric. Components that straddle
/// the boundary (e.g. the FPSoC-variant Memory Hubs) declare the domain whose
/// edges drive their `tick`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClockDomain {
    /// Ticked on fast-clock (processor-side) edges.
    Fast,
    /// Ticked on slow-clock (eFPGA-side) edges.
    Slow,
}

impl std::fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClockDomain::Fast => write!(f, "fast"),
            ClockDomain::Slow => write!(f, "slow"),
        }
    }
}

/// A node in the component graph: anything ticked on clock edges.
///
/// The `next_event_time` / `is_active` pair is the load-bearing contract:
/// the run loop merges every component's horizon (see
/// [`Horizon`](crate::horizon::Horizon)) to find the next edge where *any*
/// work can happen and arithmetically skips the dead edges in between. An
/// implementation that under-reports (claims idleness while work is pending)
/// breaks bit-exactness with the exhaustive baseline; over-reporting (waking
/// too early) costs only speed, never correctness.
pub trait Component {
    /// Stable, human-readable instance name (e.g. `core0`, `l2@n1`, `mesh`).
    /// Used to prefix link names in reports and to label registry entries.
    fn name(&self) -> String;

    /// The clock domain whose edges drive [`Component::tick`].
    fn domain(&self) -> ClockDomain {
        ClockDomain::Fast
    }

    /// Advances the component across one edge of its domain at time `now`.
    fn tick(&mut self, now: Time);

    /// Conservative earliest time at or after `now` at which this component
    /// can make observable progress, or `None` if it is idle until some other
    /// component hands it new input.
    fn next_event_time(&self, now: Time) -> Option<Time>;

    /// Whether the component has work pending on the current edge. The
    /// default derives it from [`Component::next_event_time`]; implementors
    /// with a cheaper check may override it.
    fn is_active(&self, now: Time) -> bool {
        self.next_event_time(now).is_some_and(|t| t <= now)
    }

    /// Reports every [`Link`](crate::link::Link) endpoint owned by this
    /// component. `visit` receives the link's local name (the owner's field
    /// name, e.g. `noc_out`) and a counter snapshot; registries prefix it
    /// with [`Component::name`]. The default reports nothing.
    fn visit_links(&self, visit: &mut dyn FnMut(&str, LinkReport)) {
        let _ = visit;
    }
}
