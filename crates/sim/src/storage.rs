//! Deterministic hot-path storage: [`LineMap`], [`PagedMem`], [`IdSlab`].
//!
//! The memory system keeps per-line state (directory entries, MSHRs, page
//! tables) and a sparse word-addressed backing store. Both used to live in
//! `BTreeMap`s, which pay O(log n) pointer-chasing on every simulated
//! memory access. These replacements are O(1) on the hot path while
//! keeping the engine's two determinism obligations:
//!
//! * **Fixed hashing.** [`LineMap`] hashes with a constant SplitMix64-style
//!   mixer — no per-process random seed, no platform dependence — so the
//!   *internal* layout is identical on every run and every host. (`std`'s
//!   `HashMap` randomizes its seed per process, which would make any
//!   accidental iteration-order dependence nondeterministic; here even a
//!   bug of that kind would at least be reproducible.)
//! * **Sorted observable iteration.** Anything that *iterates* a
//!   [`LineMap`] — quiescence checks, warm-up sweeps, debug dumps — sees
//!   keys in ascending order ([`LineMap::sorted_keys`]), exactly the order
//!   the old `BTreeMap` gave, so run fingerprints are bit-identical to the
//!   pre-refactor values. Iteration is O(n log n) but only runs on cold
//!   paths; per-access `get`/`insert`/`remove` never iterate.

/// One slot of the open-addressing table.
#[derive(Clone, Debug)]
enum Slot<V> {
    /// Never occupied: terminates probe chains.
    Empty,
    /// Previously occupied: probe chains continue through it, inserts may
    /// reuse it.
    Tombstone,
    /// A live (key, value) pair.
    Occupied(u64, V),
}

/// An open-addressing hash map from `u64` keys (cache-line indices, VPNs,
/// transaction ids) to `V`, with a fixed platform-independent hasher,
/// power-of-two capacity, and linear probing.
///
/// Designed for the simulator's hot paths: `get`/`get_mut`/`insert`/
/// `remove` are O(1) expected with no allocation (until growth), and the
/// table never shrinks. Observable iteration is in ascending key order —
/// see the module docs for why.
#[derive(Clone, Debug)]
pub struct LineMap<V> {
    slots: Vec<Slot<V>>,
    /// Live entries.
    len: usize,
    /// Tombstones (counted separately: they consume probe distance but not
    /// capacity).
    graves: usize,
}

/// Initial capacity of the first-touched table (slots).
const INITIAL_CAP: usize = 16;

/// Fixed 64-bit mixer (SplitMix64 finalizer): full-avalanche, constant
/// across platforms and runs.
#[inline]
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<V> Default for LineMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> LineMap<V> {
    /// An empty map. Allocates nothing until the first insert.
    pub fn new() -> Self {
        LineMap {
            slots: Vec::new(),
            len: 0,
            graves: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index of `key` if present.
    fn find(&self, key: u64) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            match &self.slots[i] {
                Slot::Empty => return None,
                Slot::Occupied(k, _) if *k == key => return Some(i),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Shared access to the value for `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| match &self.slots[i] {
            Slot::Occupied(_, v) => v,
            _ => unreachable!(),
        })
    }

    /// Mutable access to the value for `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        match self.find(key) {
            Some(i) => match &mut self.slots[i] {
                Slot::Occupied(_, v) => Some(v),
                _ => unreachable!(),
            },
            None => None,
        }
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        self.reserve_one();
        let mask = self.slots.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        // First free slot seen on the probe path (a tombstone may precede
        // the key itself, so keep probing to the chain's end).
        let mut free: Option<usize> = None;
        loop {
            match &mut self.slots[i] {
                Slot::Occupied(k, v) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Slot::Tombstone => {
                    free.get_or_insert(i);
                    i = (i + 1) & mask;
                }
                Slot::Empty => {
                    let dst = free.unwrap_or(i);
                    if matches!(self.slots[dst], Slot::Tombstone) {
                        self.graves -= 1;
                    }
                    self.slots[dst] = Slot::Occupied(key, value);
                    self.len += 1;
                    return None;
                }
                Slot::Occupied(..) => i = (i + 1) & mask,
            }
        }
    }

    /// Removes `key`, returning its value if it was present. Leaves a
    /// tombstone so longer probe chains stay intact.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let i = self.find(key)?;
        match std::mem::replace(&mut self.slots[i], Slot::Tombstone) {
            Slot::Occupied(_, v) => {
                self.len -= 1;
                self.graves += 1;
                Some(v)
            }
            _ => unreachable!(),
        }
    }

    /// Mutable access to the value for `key`, inserting `V::default()`
    /// first if absent (the `entry(..).or_default()` idiom).
    pub fn get_or_default(&mut self, key: u64) -> &mut V
    where
        V: Default,
    {
        if !self.contains_key(key) {
            self.insert(key, V::default());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Ensures room for one more entry, growing/rehashing when live +
    /// tombstone occupancy reaches 7/8 of capacity.
    fn reserve_one(&mut self) {
        if self.slots.is_empty() {
            self.slots = (0..INITIAL_CAP).map(|_| Slot::Empty).collect();
            return;
        }
        if (self.len + self.graves + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        // Grow if genuinely full; rehash in place (same capacity) if the
        // pressure is mostly tombstones.
        let cap = if (self.len + 1) * 2 > self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(&mut self.slots, (0..cap).map(|_| Slot::Empty).collect());
        self.graves = 0;
        let mask = cap - 1;
        for slot in old {
            if let Slot::Occupied(k, v) = slot {
                let mut i = (mix(k) as usize) & mask;
                while !matches!(self.slots[i], Slot::Empty) {
                    i = (i + 1) & mask;
                }
                self.slots[i] = Slot::Occupied(k, v);
            }
        }
    }

    /// All live keys in ascending order. This is the *only* way the map
    /// exposes its contents in bulk: observable iteration must not depend
    /// on table layout (see module docs).
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self
            .slots
            .iter()
            .filter_map(|s| match s {
                Slot::Occupied(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Iterates `(key, &value)` in ascending key order (cold paths only:
    /// allocates and sorts the key set).
    pub fn sorted_iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.sorted_keys()
            .into_iter()
            .map(move |k| (k, self.get(k).expect("key just listed")))
    }

    /// Tests `pred` on every live value, in no particular order (safe for
    /// observable use only when the result is order-independent, as a
    /// boolean fold is).
    pub fn all_values(&self, mut pred: impl FnMut(&V) -> bool) -> bool {
        self.slots.iter().all(|s| match s {
            Slot::Occupied(_, v) => pred(v),
            _ => true,
        })
    }
}

/// A slab allocator for small dense id spaces: `insert` returns the id
/// (a reused freed slot if one exists — LIFO — else the next fresh index),
/// `remove` frees it.
///
/// Replaces map-keyed id tracking (e.g. in-flight MMIO transaction ids)
/// with a `Vec` index: O(1) with no hashing, and ids stay small and dense
/// as long as the in-flight population does. Id allocation order is a pure
/// function of the insert/remove sequence, so it is deterministic wherever
/// the simulation is.
#[derive(Clone, Debug, Default)]
pub struct IdSlab<V> {
    slots: Vec<Option<V>>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
}

impl<V> IdSlab<V> {
    /// An empty slab.
    pub fn new() -> Self {
        IdSlab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True if the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `value`, returning its id.
    pub fn insert(&mut self, value: V) -> u64 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(value);
                u64::from(i)
            }
            None => {
                self.slots.push(Some(value));
                (self.slots.len() - 1) as u64
            }
        }
    }

    /// Removes and returns the entry for `id`, if live.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let i = usize::try_from(id).ok()?;
        let v = self.slots.get_mut(i)?.take()?;
        self.free.push(i as u32);
        Some(v)
    }

    /// Shared access to the entry for `id`.
    pub fn get(&self, id: u64) -> Option<&V> {
        self.slots.get(usize::try_from(id).ok()?)?.as_ref()
    }
}

/// Entries per page: 4096 keys map to one allocation, so a line-indexed
/// store covers 64 KB of simulated memory per page (16-byte lines).
const PAGE_ENTRIES: usize = 4096;
/// Pages directly indexable through the dense table (`1 << 16` pages =
/// 2^28 keys; beyond that the overflow map takes over).
const DIRECT_PAGES: usize = 1 << 16;

/// A sparse, lazily-allocated array of `V` indexed by `u64`, built from
/// fixed-size **copy-on-write** pages — the backing-store analogue of
/// `CacheArray`'s lazy `ensure_backing`.
///
/// Reads of never-written keys return `V::default()` *without allocating*;
/// the first write to a page allocates it (zero-filled). Keys below
/// 2^28 (the common case: line indices of the first 4 GB of simulated
/// memory) go through a dense `Vec<Option<Arc<[V]>>>` — one bounds check
/// and two loads — while higher keys fall back to a [`LineMap`] of pages.
///
/// Pages are reference-counted: `Clone` shares every page (O(pages)
/// pointer copies, no data copies), and a write to a shared page copies
/// just that page first. This is what makes `System::fork()` O(dirty
/// pages) — a forked sweep point pays only for the lines it actually
/// touches. [`PagedMem::owned_pages`] counts privately-held pages so
/// tests can assert exactly that.
#[derive(Clone, Debug, Default)]
pub struct PagedMem<V: Copy + Default> {
    direct: Vec<Option<std::sync::Arc<[V]>>>,
    high: LineMap<std::sync::Arc<[V]>>,
}

impl<V: Copy + Default> PagedMem<V> {
    /// An empty store. Allocates nothing until the first write.
    pub fn new() -> Self {
        PagedMem {
            direct: Vec::new(),
            high: LineMap::new(),
        }
    }

    /// The value at `key` (`V::default()` if never written). Never
    /// allocates.
    pub fn read(&self, key: u64) -> V {
        let (page, off) = (key as usize / PAGE_ENTRIES, key as usize % PAGE_ENTRIES);
        let page = if (key / PAGE_ENTRIES as u64) < DIRECT_PAGES as u64 {
            self.direct.get(page).and_then(|p| p.as_deref())
        } else {
            self.high.get(key / PAGE_ENTRIES as u64).map(|p| &**p)
        };
        page.map(|p| p[off]).unwrap_or_default()
    }

    /// Writes `value` at `key`, allocating the page on first touch and
    /// privatizing it first if it is shared with a fork.
    pub fn write(&mut self, key: u64, value: V) {
        let page_no = key / PAGE_ENTRIES as u64;
        let off = key as usize % PAGE_ENTRIES;
        let slot = if page_no < DIRECT_PAGES as u64 {
            let idx = page_no as usize;
            if self.direct.len() <= idx {
                self.direct.resize_with(idx + 1, || None);
            }
            self.direct[idx].get_or_insert_with(Self::blank_page)
        } else {
            if self.high.get(page_no).is_none() {
                self.high.insert(page_no, Self::blank_page());
            }
            self.high.get_mut(page_no).expect("just inserted")
        };
        Self::page_mut(slot)[off] = value;
    }

    /// Unique access to a page's entries, copying the page first if a
    /// fork still shares it.
    fn page_mut(slot: &mut std::sync::Arc<[V]>) -> &mut [V] {
        if std::sync::Arc::get_mut(slot).is_none() {
            *slot = std::sync::Arc::from(&slot[..]);
        }
        std::sync::Arc::get_mut(slot).expect("page is unique after copy-out")
    }

    /// Number of pages currently allocated (tests/diagnostics).
    pub fn allocated_pages(&self) -> usize {
        self.direct.iter().filter(|p| p.is_some()).count() + self.high.len()
    }

    /// Number of allocated pages this store holds *privately* (not
    /// shared with any fork). Immediately after a fork this is zero on
    /// both sides; it grows by exactly one per copy-on-write fault, so
    /// "fork is O(dirty pages)" is directly assertable.
    pub fn owned_pages(&self) -> usize {
        let direct = self
            .direct
            .iter()
            .flatten()
            .filter(|p| std::sync::Arc::strong_count(p) == 1)
            .count();
        let mut high = 0;
        for k in self.high.sorted_keys() {
            if self
                .high
                .get(k)
                .is_some_and(|p| std::sync::Arc::strong_count(p) == 1)
            {
                high += 1;
            }
        }
        direct + high
    }

    fn blank_page() -> std::sync::Arc<[V]> {
        std::sync::Arc::from(vec![V::default(); PAGE_ENTRIES].into_boxed_slice())
    }
}

impl<V: crate::snapshot::Pack> crate::snapshot::Pack for LineMap<V> {
    /// Serialized as `len` followed by `(key, value)` pairs in ascending
    /// key order — the map's only observable order. Unpacking rebuilds by
    /// insertion, so the internal probe layout (growth history, tombstones)
    /// is *not* preserved; nothing observable depends on it.
    fn pack(&self, w: &mut crate::snapshot::SnapWriter) {
        w.len64(self.len);
        for (k, v) in self.sorted_iter() {
            w.u64(k);
            v.pack(w);
        }
    }
    fn unpack(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let n = r.len64()?;
        let mut m = LineMap::new();
        for _ in 0..n {
            let k = r.u64()?;
            let v = V::unpack(r)?;
            if m.insert(k, v).is_some() {
                return Err(crate::snapshot::SnapError::Corrupt("duplicate LineMap key"));
            }
        }
        Ok(m)
    }
}

impl<V: crate::snapshot::Pack> crate::snapshot::Pack for IdSlab<V> {
    /// Slots and free list are serialized verbatim: freed ids are reused
    /// LIFO, so the free list's exact order is observable through future
    /// `insert` calls.
    fn pack(&self, w: &mut crate::snapshot::SnapWriter) {
        self.slots.pack(w);
        self.free.pack(w);
    }
    fn unpack(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        let slots = Vec::<Option<V>>::unpack(r)?;
        let free = Vec::<u32>::unpack(r)?;
        for &i in &free {
            let live = slots.get(i as usize).map(|s| s.is_some());
            if live != Some(false) {
                return Err(crate::snapshot::SnapError::Corrupt(
                    "IdSlab free list names a live or out-of-range slot",
                ));
            }
        }
        Ok(IdSlab { slots, free })
    }
}

impl<V: crate::snapshot::Pack + Copy + Default> crate::snapshot::Snap for PagedMem<V> {
    /// Serialized as the allocated page set in ascending page-number order
    /// (direct pages first, then overflow pages — overflow keys are all
    /// larger, so the concatenation is globally sorted), each page as its
    /// full `PAGE_ENTRIES` payload. Restore materializes fresh uniquely-
    /// owned pages; COW sharing with any pre-snapshot fork is not (and must
    /// not be) preserved.
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.len64(self.allocated_pages());
        for (idx, page) in self.direct.iter().enumerate() {
            if let Some(page) = page {
                w.u64(idx as u64);
                for v in page.iter() {
                    v.pack(w);
                }
            }
        }
        for k in self.high.sorted_keys() {
            w.u64(k);
            for v in self.high.get(k).expect("key just listed").iter() {
                v.pack(w);
            }
        }
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        let n = r.len64()?;
        let mut fresh = PagedMem::new();
        for _ in 0..n {
            let page_no = r.u64()?;
            let mut page = vec![V::default(); PAGE_ENTRIES];
            for v in page.iter_mut() {
                *v = V::unpack(r)?;
            }
            let page: std::sync::Arc<[V]> = std::sync::Arc::from(page.into_boxed_slice());
            if page_no < DIRECT_PAGES as u64 {
                let idx = page_no as usize;
                if fresh.direct.len() <= idx {
                    fresh.direct.resize_with(idx + 1, || None);
                }
                if fresh.direct[idx].replace(page).is_some() {
                    return Err(crate::snapshot::SnapError::Corrupt(
                        "duplicate PagedMem page",
                    ));
                }
            } else if fresh.high.insert(page_no, page).is_some() {
                return Err(crate::snapshot::SnapError::Corrupt(
                    "duplicate PagedMem page",
                ));
            }
        }
        *self = fresh;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linemap_basic_insert_get_remove() {
        let mut m: LineMap<u32> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(10, 1), None);
        assert_eq!(m.insert(20, 2), None);
        assert_eq!(m.insert(10, 3), Some(1));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(10), Some(&3));
        assert_eq!(m.get(20), Some(&2));
        assert_eq!(m.get(30), None);
        *m.get_mut(20).unwrap() += 5;
        assert_eq!(m.remove(20), Some(7));
        assert_eq!(m.remove(20), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn linemap_collision_chains_survive_middle_removal() {
        // Force every key into the same bucket by picking keys whose mixed
        // hash collides modulo the (fixed, known) initial capacity. Rather
        // than reverse the mixer, brute-force keys with equal low bits.
        let mut keys = Vec::new();
        let want = (mix(0) as usize) & (INITIAL_CAP - 1);
        let mut k = 0u64;
        while keys.len() < 5 {
            if (mix(k) as usize) & (INITIAL_CAP - 1) == want {
                keys.push(k);
            }
            k += 1;
        }
        let mut m: LineMap<u64> = LineMap::new();
        for &k in &keys {
            m.insert(k, k * 100);
        }
        // Remove from the middle of the probe chain, then confirm entries
        // past the tombstone are still reachable.
        m.remove(keys[1]);
        m.remove(keys[2]);
        for (i, &k) in keys.iter().enumerate() {
            let expect = if i == 1 || i == 2 {
                None
            } else {
                Some(k * 100)
            };
            assert_eq!(m.get(k).copied(), expect, "key {k}");
        }
        // Reinsert one: must land in a tombstone slot, not duplicate.
        m.insert(keys[2], 777);
        assert_eq!(m.get(keys[2]), Some(&777));
        assert_eq!(m.len(), keys.len() - 1);
    }

    #[test]
    fn linemap_growth_rehash_keeps_all_entries() {
        let mut m: LineMap<u64> = LineMap::new();
        for k in 0..10_000u64 {
            m.insert(k * 13, k);
        }
        assert_eq!(m.len(), 10_000);
        assert!(m.slots.len().is_power_of_two());
        for k in 0..10_000u64 {
            assert_eq!(m.get(k * 13), Some(&k));
        }
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn linemap_tombstone_reuse_bounds_table_size() {
        // Churn: repeated insert/remove of a sliding window must not grow
        // the table without bound — rehash-in-place reclaims tombstones.
        let mut m: LineMap<u64> = LineMap::new();
        for k in 0..100_000u64 {
            m.insert(k, k);
            if k >= 16 {
                m.remove(k - 16);
            }
        }
        assert_eq!(m.len(), 16);
        assert!(
            m.slots.len() <= 1024,
            "table ballooned to {} slots for 16 live entries",
            m.slots.len()
        );
    }

    #[test]
    fn linemap_sorted_iteration_ignores_insertion_order() {
        let mut m: LineMap<u64> = LineMap::new();
        for &k in &[5u64, 1 << 40, 2, 999, 3, 77] {
            m.insert(k, k + 1);
        }
        assert_eq!(m.sorted_keys(), vec![2, 3, 5, 77, 999, 1 << 40]);
        let pairs: Vec<(u64, u64)> = m.sorted_iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(
            pairs,
            vec![
                (2, 3),
                (3, 4),
                (5, 6),
                (77, 78),
                (999, 1000),
                (1 << 40, (1 << 40) + 1)
            ]
        );
    }

    #[test]
    fn linemap_get_or_default_inserts_once() {
        let mut m: LineMap<Vec<u32>> = LineMap::new();
        m.get_or_default(9).push(1);
        m.get_or_default(9).push(2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(9), Some(&vec![1, 2]));
    }

    #[test]
    fn linemap_all_values_folds_every_entry() {
        let mut m: LineMap<u64> = LineMap::new();
        for k in 0..50 {
            m.insert(k, k % 7);
        }
        assert!(m.all_values(|v| *v < 7));
        assert!(!m.all_values(|v| *v < 6));
        assert!(LineMap::<u64>::new().all_values(|_| false));
    }

    #[test]
    fn idslab_reuses_freed_ids_lifo() {
        let mut s: IdSlab<&str> = IdSlab::new();
        assert_eq!(s.insert("a"), 0);
        assert_eq!(s.insert("b"), 1);
        assert_eq!(s.insert("c"), 2);
        assert_eq!(s.remove(1), Some("b"));
        assert_eq!(s.remove(1), None, "double-free is a no-op");
        assert_eq!(s.remove(0), Some("a"));
        // LIFO: last freed (0) comes back first.
        assert_eq!(s.insert("d"), 0);
        assert_eq!(s.insert("e"), 1);
        assert_eq!(s.insert("f"), 3);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(2), Some(&"c"));
        assert_eq!(s.get(99), None);
    }

    #[test]
    fn pagedmem_reads_default_without_allocating() {
        let p: PagedMem<u64> = PagedMem::new();
        assert_eq!(p.read(0), 0);
        assert_eq!(p.read(123_456_789), 0);
        assert_eq!(p.read(u64::MAX), 0);
        assert_eq!(p.allocated_pages(), 0);
    }

    #[test]
    fn pagedmem_lazy_allocation_counts_pages() {
        let mut p: PagedMem<u64> = PagedMem::new();
        p.write(0, 1); // page 0
        p.write(1, 2); // page 0 again
        p.write(PAGE_ENTRIES as u64, 3); // page 1
        p.write(10 * PAGE_ENTRIES as u64, 4); // page 10
        assert_eq!(p.allocated_pages(), 3);
        assert_eq!(p.read(0), 1);
        assert_eq!(p.read(1), 2);
        assert_eq!(p.read(PAGE_ENTRIES as u64), 3);
        assert_eq!(p.read(10 * PAGE_ENTRIES as u64), 4);
        // Untouched key on an allocated page reads default.
        assert_eq!(p.read(2), 0);
    }

    #[test]
    fn pagedmem_page_boundary_keys_stay_separate() {
        let mut p: PagedMem<u32> = PagedMem::new();
        let b = PAGE_ENTRIES as u64;
        p.write(b - 1, 11);
        p.write(b, 22);
        assert_eq!(p.read(b - 1), 11);
        assert_eq!(p.read(b), 22);
        assert_eq!(p.allocated_pages(), 2);
    }

    #[test]
    fn pagedmem_high_keys_use_overflow_map() {
        let mut p: PagedMem<u16> = PagedMem::new();
        let high = (DIRECT_PAGES as u64) * (PAGE_ENTRIES as u64) + 5;
        p.write(high, 42);
        assert_eq!(p.read(high), 42);
        assert_eq!(p.read(high + 1), 0);
        assert_eq!(p.allocated_pages(), 1);
        // The dense table must not have been resized to cover it.
        assert!(p.direct.is_empty());
    }

    #[test]
    fn pagedmem_clone_shares_pages_until_written() {
        let mut a: PagedMem<u64> = PagedMem::new();
        for page in 0..8u64 {
            a.write(page * PAGE_ENTRIES as u64, page + 1);
        }
        let high = (DIRECT_PAGES as u64) * (PAGE_ENTRIES as u64);
        a.write(high, 99);
        assert_eq!(a.allocated_pages(), 9);
        assert_eq!(a.owned_pages(), 9);

        let mut b = a.clone();
        // COW fork: every page is now shared, neither side owns any.
        assert_eq!(a.owned_pages(), 0);
        assert_eq!(b.owned_pages(), 0);
        // Reads don't privatize.
        assert_eq!(b.read(3 * PAGE_ENTRIES as u64), 4);
        assert_eq!(b.read(high), 99);
        assert_eq!(b.owned_pages(), 0);

        // A write privatizes exactly the touched page, on the writer only.
        b.write(3 * PAGE_ENTRIES as u64 + 1, 77);
        assert_eq!(b.owned_pages(), 1);
        assert_eq!(
            a.owned_pages(),
            1,
            "parent's copy of page 3 is private now too"
        );
        // Isolation both ways.
        assert_eq!(b.read(3 * PAGE_ENTRIES as u64 + 1), 77);
        assert_eq!(a.read(3 * PAGE_ENTRIES as u64 + 1), 0);
        a.write(high + 2, 5);
        assert_eq!(b.read(high + 2), 0);

        // Dropping the fork returns the parent to full ownership.
        drop(b);
        assert_eq!(a.owned_pages(), 9);
    }

    #[test]
    fn linemap_pack_roundtrip_preserves_contents() {
        use crate::snapshot::{Pack, SnapReader, SnapWriter};
        let mut m: LineMap<u64> = LineMap::new();
        for k in 0..500u64 {
            m.insert(k * 7, k);
        }
        for k in 0..250u64 {
            m.remove(k * 14);
        }
        let mut w = SnapWriter::new();
        m.pack(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        let back = LineMap::<u64>::unpack(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.len(), m.len());
        assert_eq!(back.sorted_keys(), m.sorted_keys());
        for k in m.sorted_keys() {
            assert_eq!(back.get(k), m.get(k));
        }
    }

    #[test]
    fn idslab_pack_roundtrip_preserves_allocation_order() {
        use crate::snapshot::{Pack, SnapReader, SnapWriter};
        let mut s: IdSlab<u32> = IdSlab::new();
        for v in 0..6u32 {
            s.insert(v);
        }
        s.remove(4);
        s.remove(1);
        let mut w = SnapWriter::new();
        s.pack(&mut w);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        let mut back = IdSlab::<u32>::unpack(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.len(), s.len());
        // LIFO reuse order must survive: 1 was freed last, comes back first.
        assert_eq!(back.insert(100), 1);
        assert_eq!(back.insert(101), 4);
        assert_eq!(back.insert(102), 6);
    }

    #[test]
    fn idslab_unpack_rejects_corrupt_free_list() {
        use crate::snapshot::{Pack, SnapError, SnapReader, SnapWriter};
        let mut w = SnapWriter::new();
        vec![Some(1u32), Some(2)].pack(&mut w);
        vec![0u32].pack(&mut w); // slot 0 is live, can't be free
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        assert!(matches!(
            IdSlab::<u32>::unpack(&mut r),
            Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn pagedmem_snap_roundtrip_and_reset() {
        use crate::snapshot::{Snap, SnapReader, SnapWriter};
        let mut p: PagedMem<u64> = PagedMem::new();
        p.write(5, 50);
        p.write(3 * PAGE_ENTRIES as u64 + 9, 39);
        let high = (DIRECT_PAGES as u64) * (PAGE_ENTRIES as u64) + 7;
        p.write(high, 7);
        let mut w = SnapWriter::new();
        p.save(&mut w);
        let buf = w.finish();

        // Load into a store with unrelated prior contents: must fully reset.
        let mut q: PagedMem<u64> = PagedMem::new();
        q.write(1, 111);
        q.write(40 * PAGE_ENTRIES as u64, 4);
        let mut r = SnapReader::new(&buf);
        q.load(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(q.allocated_pages(), 3);
        assert_eq!(q.read(5), 50);
        assert_eq!(q.read(3 * PAGE_ENTRIES as u64 + 9), 39);
        assert_eq!(q.read(high), 7);
        assert_eq!(q.read(1), 0, "stale page must be gone");
        assert_eq!(q.read(40 * PAGE_ENTRIES as u64), 0);
        // Restored pages are uniquely owned regardless of prior sharing.
        assert_eq!(q.owned_pages(), 3);
    }
}
