//! A small, deterministic pseudo-random number generator.
//!
//! The simulator is deterministic by construction; randomness is only used
//! for workload generation and randomized arbitration tie-breaking, and must
//! be reproducible from a seed. This is a `SplitMix64`/`xoshiro256**`-style
//! generator — we avoid pulling `rand` into the core crates so that the
//! substrate has zero dependencies.

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// # Example
///
/// ```
/// use duet_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.gen_range(10..20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to expand the seed into four non-zero words.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next value in `[0, bound)` using Lemire's multiply-shift reduction.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the given half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "range must be non-empty");
        range.start + self.next_below(range.end - range.start)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl crate::snapshot::Snap for SimRng {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Pack;
        self.s.pack(w);
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::Pack;
        self.s = <[u64; 4]>::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.gen_range(5..17);
            assert!((5..17).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SimRng::new(9);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}
