//! Event-horizon merging: the shared `next_event_time` idiom.
//!
//! Every layer of the simulator answers the same question — "when can this
//! structure next make observable progress?" — by folding an `Option<Time>`
//! minimum over its parts, clamped so that times at or before `now` mean
//! "work on this very edge". Before this module, each crate hand-rolled that
//! fold (and the `System` god-object did it once more with a macro). The
//! [`Horizon`] accumulator captures the idiom once:
//!
//! ```
//! use duet_sim::{Horizon, Time};
//!
//! let now = Time::from_ps(5_000);
//! let mut h = Horizon::new(now);
//! assert!(!h.merge(Time::from_ps(9_000)));   // future: keep folding
//! assert!(h.merge(Time::from_ps(4_000)));    // due now: caller may stop
//! assert_eq!(h.earliest(), Some(now));       // clamped up to `now`
//! ```
//!
//! The clamp matters: a component may report a time in the past (e.g. a
//! queue entry that became ready while the component was gated); the merged
//! horizon must never ask the scheduler to travel backwards.

use crate::time::Time;

/// Accumulates the minimum of per-component event times relative to `now`.
///
/// `merge*` returns `true` when the merged time is due on the current edge
/// (`<= now`) — the caller may early-exit the fold, since no other component
/// can lower the horizon further.
#[derive(Clone, Copy, Debug)]
pub struct Horizon {
    now: Time,
    earliest: Option<Time>,
}

impl Horizon {
    /// Starts an empty horizon fold at the current edge time `now`.
    pub fn new(now: Time) -> Self {
        Horizon {
            now,
            earliest: None,
        }
    }

    /// Folds one event time in. Returns `true` if the horizon is now due
    /// (i.e. some merged time was `<= now`, clamped up to `now`) — sticky,
    /// so callers can early-exit a fold as soon as it fires.
    pub fn merge(&mut self, t: Time) -> bool {
        let t = t.max(self.now);
        match self.earliest {
            Some(e) if e <= t => {}
            _ => self.earliest = Some(t),
        }
        self.due()
    }

    /// Folds an optional event time in (`None` merges nothing). Returns
    /// `true` if the horizon is now due.
    pub fn merge_opt(&mut self, t: Option<Time>) -> bool {
        match t {
            Some(t) => self.merge(t),
            None => false,
        }
    }

    /// Whether the merged horizon is due on the current edge.
    pub fn due(&self) -> bool {
        self.earliest.is_some_and(|e| e <= self.now)
    }

    /// The merged horizon: earliest event time at or after `now`, or `None`
    /// if nothing was merged (everything idle).
    pub fn earliest(&self) -> Option<Time> {
        self.earliest
    }
}

/// Minimum of two optional event times (`None` = idle). The leaf-level form
/// of the idiom, for components folding over two or three queues without the
/// early-exit machinery.
pub fn merge_min(a: Option<Time>, b: Option<Time>) -> Option<Time> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    #[test]
    fn empty_horizon_is_idle() {
        let h = Horizon::new(ps(100));
        assert_eq!(h.earliest(), None);
        assert!(!h.due());
    }

    #[test]
    fn merge_keeps_minimum_of_future_times() {
        let mut h = Horizon::new(ps(100));
        assert!(!h.merge(ps(500)));
        assert!(!h.merge(ps(300)));
        assert!(!h.merge(ps(900)));
        assert_eq!(h.earliest(), Some(ps(300)));
        assert!(!h.due());
    }

    #[test]
    fn past_times_clamp_to_now_and_report_due() {
        let mut h = Horizon::new(ps(100));
        assert!(h.merge(ps(40)), "a past event is due on this edge");
        assert_eq!(h.earliest(), Some(ps(100)), "clamped, never backwards");
        assert!(h.due());
    }

    #[test]
    fn exactly_now_is_due() {
        let mut h = Horizon::new(ps(100));
        assert!(h.merge(ps(100)));
        assert_eq!(h.earliest(), Some(ps(100)));
    }

    #[test]
    fn due_horizon_absorbs_later_merges() {
        let mut h = Horizon::new(ps(100));
        assert!(h.merge(ps(100)));
        assert!(h.merge(ps(700)), "stays due once due");
        assert_eq!(h.earliest(), Some(ps(100)));
    }

    #[test]
    fn merge_opt_ignores_idle_components() {
        let mut h = Horizon::new(ps(100));
        assert!(!h.merge_opt(None));
        assert_eq!(h.earliest(), None);
        assert!(!h.merge_opt(Some(ps(250))));
        assert!(h.merge_opt(Some(ps(100))));
        assert_eq!(h.earliest(), Some(ps(100)));
    }

    #[test]
    fn merge_min_folds_options() {
        assert_eq!(merge_min(None, None), None);
        assert_eq!(merge_min(Some(ps(5)), None), Some(ps(5)));
        assert_eq!(merge_min(None, Some(ps(7))), Some(ps(7)));
        assert_eq!(merge_min(Some(ps(9)), Some(ps(7))), Some(ps(7)));
    }
}
