//! Typed, instrumented links: the edges of the component graph.
//!
//! A [`Link`] subsumes the three ad-hoc edge kinds the system grew
//! organically:
//!
//! * **Sync** — a same-domain [`Fifo`] with next-cycle visibility (mesh
//!   router input buffers, paper Sec. IV's NoC ports).
//! * **Cdc** — an [`AsyncFifo`] clock-domain crossing with Gray-coded
//!   synchronizer cost (adapter fabric FIFOs, the FPSoC `SlowHubCdc` pair;
//!   paper Sec. IV-B).
//! * **Pipe** — an unbounded staging queue whose entries each carry an
//!   explicit ready time (cache/directory output queues whose per-message
//!   delay varies, and the mesh `inject_pending` backpressure buffers).
//!
//! Every link counts successful pushes/pops, rejected pushes (backpressure
//! stalls), peak occupancy, and a log₂ occupancy histogram — free
//! observability for Fig. 9-style attribution.
//!
//! # Determinism note
//!
//! [`LinkStats::pushes`], [`LinkStats::pops`], [`LinkStats::peak_occupancy`]
//! and the histogram are driven only by *successful* data movement, which is
//! bit-identical between event-horizon scheduling and the exhaustive
//! baseline; determinism fingerprints may include them.
//! [`LinkStats::rejected_pushes`] counts *attempts*, which gated components
//! never make — it is observability-only and must stay out of fingerprints.

use std::collections::VecDeque;

use crate::clock::Clock;
use crate::fifo::{AsyncFifo, Fifo, PushError};
use crate::time::Time;

/// Number of log₂ buckets in the occupancy histogram: bucket *k* counts
/// pushes that left the link with an occupancy in `[2^k, 2^(k+1))`, with the
/// last bucket absorbing everything larger.
pub const OCCUPANCY_BUCKETS: usize = 8;

/// Monotonic traffic counters for one [`Link`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Successful pushes over the link's lifetime.
    pub pushes: u64,
    /// Successful pops.
    pub pops: u64,
    /// Pushes refused because the link was full (backpressure stalls).
    /// Observability-only: see the module-level determinism note.
    pub rejected_pushes: u64,
    /// Highest occupancy ever observed immediately after a push.
    pub peak_occupancy: usize,
    /// Log₂ histogram of occupancy sampled after each successful push.
    pub occupancy_hist: [u64; OCCUPANCY_BUCKETS],
}

impl LinkStats {
    fn record_push(&mut self, occupancy_after: usize) {
        self.pushes += 1;
        self.peak_occupancy = self.peak_occupancy.max(occupancy_after);
        let bucket = if occupancy_after <= 1 {
            0
        } else {
            ((usize::BITS - 1 - occupancy_after.leading_zeros()) as usize)
                .min(OCCUPANCY_BUCKETS - 1)
        };
        self.occupancy_hist[bucket] += 1;
    }
}

/// Point-in-time snapshot of a link, as gathered by
/// [`Component::visit_links`](crate::component::Component::visit_links).
#[derive(Clone, Debug)]
pub struct LinkReport {
    /// Transport kind: `"sync"`, `"cdc"`, or `"pipe"`.
    pub kind: &'static str,
    /// Bounded capacity, or `None` for unbounded pipes.
    pub capacity: Option<usize>,
    /// Entries currently buffered (visible or in flight).
    pub occupancy: usize,
    /// Lifetime counters.
    pub stats: LinkStats,
}

#[derive(Clone, Debug)]
struct PipeSlot<T> {
    ready_at: Time,
    item: T,
}

#[derive(Clone, Debug)]
enum Transport<T> {
    Sync(Fifo<T>),
    Cdc(AsyncFifo<T>),
    Pipe(VecDeque<PipeSlot<T>>),
}

/// A typed, instrumented point-to-point edge of the component graph.
///
/// All timing behaviour delegates to the proven [`Fifo`]/[`AsyncFifo`]
/// models (or, for pipes, to an explicit per-entry ready time); `Link` adds
/// only a uniform API and traffic counters on top, so converting a raw queue
/// to a link is behaviour-preserving by construction.
#[derive(Clone, Debug)]
pub struct Link<T> {
    transport: Transport<T>,
    stats: LinkStats,
    /// Fault-injection hook: a frozen link refuses pushes and hides its
    /// contents from the consumer (entries are preserved and reappear on
    /// thaw). See `duet-verify`'s `FaultKind::CdcFreeze`.
    frozen: bool,
}

impl<T> Link<T> {
    /// A same-domain synchronous link: `capacity` entries, each visible
    /// `latency` after its push (one clock period for next-cycle FIFOs).
    pub fn sync(capacity: usize, latency: Time) -> Self {
        Link {
            transport: Transport::Sync(Fifo::new(capacity, latency)),
            stats: LinkStats::default(),
            frozen: false,
        }
    }

    /// A clock-domain-crossing link over a Gray-coded `sync_stages`-deep
    /// synchronizer (see [`AsyncFifo`]).
    pub fn cdc(capacity: usize, sync_stages: u32, producer: Clock, consumer: Clock) -> Self {
        Link {
            transport: Transport::Cdc(AsyncFifo::new(capacity, sync_stages, producer, consumer)),
            stats: LinkStats::default(),
            frozen: false,
        }
    }

    /// An unbounded staging link whose entries carry explicit ready times
    /// (use [`Link::push_at`]); a plain [`Link::push`] is visible at once.
    pub fn pipe() -> Self {
        Link {
            transport: Transport::Pipe(VecDeque::new()),
            stats: LinkStats::default(),
            frozen: false,
        }
    }

    /// Entries currently buffered, visible to the consumer or not.
    pub fn len(&self) -> usize {
        match &self.transport {
            Transport::Sync(f) => f.len(),
            Transport::Cdc(f) => f.len(),
            Transport::Pipe(q) => q.len(),
        }
    }

    /// Whether the link buffers no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounded capacity, or `None` for unbounded pipes.
    pub fn capacity(&self) -> Option<usize> {
        match &self.transport {
            Transport::Sync(f) => Some(f.capacity()),
            Transport::Cdc(f) => Some(f.capacity()),
            Transport::Pipe(_) => None,
        }
    }

    /// Whether a push at `now` would succeed. Pure: never counts a stall —
    /// only a failed [`Link::push`] does (see the determinism note).
    pub fn can_push(&self, now: Time) -> bool {
        if self.frozen {
            return false;
        }
        match &self.transport {
            Transport::Sync(f) => f.can_push(),
            Transport::Cdc(f) => f.can_push(now),
            Transport::Pipe(_) => true,
        }
    }

    /// Pushes `item` at time `now`; visibility follows the transport's
    /// timing model (pipes: visible immediately).
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] — and counts a rejected push — if the link is
    /// full.
    pub fn push(&mut self, now: Time, item: T) -> Result<(), PushError> {
        if self.frozen {
            self.stats.rejected_pushes += 1;
            return Err(PushError);
        }
        let res = match &mut self.transport {
            Transport::Sync(f) => f.push(now, item),
            Transport::Cdc(f) => f.push(now, item),
            Transport::Pipe(q) => {
                q.push_back(PipeSlot {
                    ready_at: now,
                    item,
                });
                Ok(())
            }
        };
        match res {
            Ok(()) => self.stats.record_push(self.len()),
            Err(PushError) => self.stats.rejected_pushes += 1,
        }
        res
    }

    /// Pushes an entry that becomes visible at exactly `ready_at` (pipes
    /// only; clocked transports derive visibility from their own timing).
    /// Order is strictly FIFO: an entry with an early ready time queued
    /// behind a later one waits for the head (head-of-line blocking, as in
    /// the hardware queues this models).
    ///
    /// # Panics
    ///
    /// Panics on a sync or CDC link — an explicit ready time would bypass
    /// the transport's timing model.
    pub fn push_at(&mut self, ready_at: Time, item: T) {
        match &mut self.transport {
            Transport::Pipe(q) => {
                q.push_back(PipeSlot { ready_at, item });
                self.stats.record_push(self.len());
            }
            _ => panic!("push_at is only valid on pipe links"),
        }
    }

    /// Peeks at the front entry if it is visible at `now`.
    pub fn front(&self, now: Time) -> Option<&T> {
        if self.frozen {
            return None;
        }
        match &self.transport {
            Transport::Sync(f) => f.front(now),
            Transport::Cdc(f) => f.front(now),
            Transport::Pipe(q) => q.front().filter(|s| s.ready_at <= now).map(|s| &s.item),
        }
    }

    /// Pops the front entry if it is visible at `now`.
    pub fn pop(&mut self, now: Time) -> Option<T> {
        if self.frozen {
            return None;
        }
        let popped = match &mut self.transport {
            Transport::Sync(f) => f.pop(now),
            Transport::Cdc(f) => f.pop(now),
            Transport::Pipe(q) => {
                if q.front().is_some_and(|s| s.ready_at <= now) {
                    q.pop_front().map(|s| s.item)
                } else {
                    None
                }
            }
        };
        if popped.is_some() {
            self.stats.pops += 1;
        }
        popped
    }

    /// Time at which the front entry becomes consumer-visible, if any entry
    /// is buffered. The event-horizon scheduler merges this across links.
    pub fn front_ready_at(&self) -> Option<Time> {
        if self.frozen {
            return None;
        }
        match &self.transport {
            Transport::Sync(f) => f.front_ready_at(),
            Transport::Cdc(f) => f.front_ready_at(),
            Transport::Pipe(q) => q.front().map(|s| s.ready_at),
        }
    }

    /// Drains every entry regardless of visibility (reset/flush). Lifetime
    /// counters are preserved.
    pub fn clear(&mut self) {
        match &mut self.transport {
            Transport::Sync(f) => f.clear(),
            Transport::Cdc(f) => f.clear(),
            Transport::Pipe(q) => q.clear(),
        }
    }

    /// Iterates over all buffered items front-to-back, ignoring visibility.
    pub fn iter(&self) -> Box<dyn Iterator<Item = &T> + '_> {
        match &self.transport {
            Transport::Sync(f) => Box::new(f.iter()),
            Transport::Cdc(f) => Box::new(f.iter()),
            Transport::Pipe(q) => Box::new(q.iter().map(|s| &s.item)),
        }
    }

    /// Freezes or thaws the link (fault injection). While frozen the link
    /// rejects pushes, hides its contents from the consumer, and reports no
    /// front-ready time; buffered entries are preserved and become visible
    /// again — with their original timing — once thawed. Callers that freeze
    /// links are responsible for scheduling a wake-up at thaw time (the
    /// system run loop merges fault-window boundaries into its horizon).
    pub fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// Whether the link is currently frozen by fault injection.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Snapshot for registries and experiment harnesses.
    pub fn report(&self) -> LinkReport {
        LinkReport {
            kind: match &self.transport {
                Transport::Sync(_) => "sync",
                Transport::Cdc(_) => "cdc",
                Transport::Pipe(_) => "pipe",
            },
            capacity: self.capacity(),
            occupancy: self.len(),
            stats: self.stats,
        }
    }

    /// Occupancy as seen by the producer at `now` (CDC links count
    /// freed-but-unsynchronized slots; others equal [`Link::len`]).
    pub fn producer_occupancy(&self, now: Time) -> usize {
        match &self.transport {
            Transport::Cdc(f) => f.producer_occupancy(now),
            _ => self.len(),
        }
    }

    /// Reconfigures the consumer clock of a CDC link (programmable eFPGA
    /// clock changes). In-flight entries keep their visibility times.
    ///
    /// # Panics
    ///
    /// Panics if the link is not a CDC link.
    pub fn set_consumer_clock(&mut self, clock: Clock) {
        match &mut self.transport {
            Transport::Cdc(f) => f.set_consumer_clock(clock),
            _ => panic!("set_consumer_clock is only valid on cdc links"),
        }
    }

    /// Reconfigures the producer clock of a CDC link.
    ///
    /// # Panics
    ///
    /// Panics if the link is not a CDC link.
    pub fn set_producer_clock(&mut self, clock: Clock) {
        match &mut self.transport {
            Transport::Cdc(f) => f.set_producer_clock(clock),
            _ => panic!("set_producer_clock is only valid on cdc links"),
        }
    }

    /// The consumer-domain clock of a CDC link.
    ///
    /// # Panics
    ///
    /// Panics if the link is not a CDC link.
    pub fn consumer_clock(&self) -> Clock {
        match &self.transport {
            Transport::Cdc(f) => f.consumer_clock(),
            _ => panic!("consumer_clock is only valid on cdc links"),
        }
    }
}

impl crate::snapshot::Pack for LinkStats {
    fn pack(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u64(self.pushes);
        w.u64(self.pops);
        w.u64(self.rejected_pushes);
        w.len64(self.peak_occupancy);
        self.occupancy_hist.pack(w);
    }
    fn unpack(r: &mut crate::snapshot::SnapReader<'_>) -> Result<Self, crate::snapshot::SnapError> {
        Ok(LinkStats {
            pushes: r.u64()?,
            pops: r.u64()?,
            rejected_pushes: r.u64()?,
            peak_occupancy: r.len64()?,
            occupancy_hist: <[u64; OCCUPANCY_BUCKETS] as crate::snapshot::Pack>::unpack(r)?,
        })
    }
}

impl<T: crate::snapshot::Pack> crate::snapshot::Snap for Link<T> {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Pack;
        let kind: u8 = match &self.transport {
            Transport::Sync(_) => 0,
            Transport::Cdc(_) => 1,
            Transport::Pipe(_) => 2,
        };
        w.u8(kind);
        match &self.transport {
            Transport::Sync(f) => f.save(w),
            Transport::Cdc(f) => f.save(w),
            Transport::Pipe(q) => {
                w.len64(q.len());
                for s in q {
                    s.ready_at.pack(w);
                    s.item.pack(w);
                }
            }
        }
        self.stats.pack(w);
        self.frozen.pack(w);
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::Pack;
        let kind = r.u8()?;
        let expected: u8 = match &self.transport {
            Transport::Sync(_) => 0,
            Transport::Cdc(_) => 1,
            Transport::Pipe(_) => 2,
        };
        if kind != expected {
            return Err(crate::snapshot::SnapError::Corrupt(
                "link transport kind mismatch",
            ));
        }
        match &mut self.transport {
            Transport::Sync(f) => f.load(r)?,
            Transport::Cdc(f) => f.load(r)?,
            Transport::Pipe(q) => {
                let n = r.len64()?;
                q.clear();
                for _ in 0..n {
                    let ready_at = Time::unpack(r)?;
                    let item = T::unpack(r)?;
                    q.push_back(PipeSlot { ready_at, item });
                }
            }
        }
        self.stats = LinkStats::unpack(r)?;
        self.frozen = bool::unpack(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(v: u64) -> Time {
        Time::from_ps(v)
    }

    #[test]
    fn sync_link_matches_fifo_timing() {
        let mut l = Link::sync(2, ps(1000));
        l.push(ps(1000), 7u32).unwrap();
        assert!(l.front(ps(1000)).is_none(), "next-cycle visibility");
        assert_eq!(l.pop(ps(2000)), Some(7));
        assert_eq!(l.stats().pushes, 1);
        assert_eq!(l.stats().pops, 1);
    }

    #[test]
    fn sync_link_counts_rejected_pushes() {
        let mut l = Link::sync(1, ps(0));
        l.push(ps(0), 1u8).unwrap();
        assert!(l.push(ps(0), 2u8).is_err());
        assert_eq!(l.stats().rejected_pushes, 1);
        assert_eq!(l.stats().pushes, 1);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn cdc_link_matches_async_fifo_timing() {
        let fast = Clock::ghz1();
        let slow = Clock::from_mhz(100.0);
        let mut l = Link::cdc(8, 2, fast, slow);
        l.push(ps(1000), 9u64).unwrap();
        assert_eq!(l.pop(ps(19_999)), None);
        assert_eq!(l.pop(ps(20_000)), Some(9));
    }

    #[test]
    fn pipe_link_respects_explicit_ready_times() {
        let mut l = Link::pipe();
        l.push_at(ps(5000), 'a');
        l.push_at(ps(7000), 'b');
        assert_eq!(l.front_ready_at(), Some(ps(5000)));
        assert!(l.pop(ps(4999)).is_none());
        assert_eq!(l.pop(ps(5000)), Some('a'));
        assert!(l.pop(ps(5000)).is_none());
        assert_eq!(l.pop(ps(7000)), Some('b'));
        assert!(l.capacity().is_none());
        assert!(l.can_push(ps(0)));
    }

    #[test]
    fn pipe_plain_push_is_immediately_visible() {
        let mut l = Link::pipe();
        l.push(ps(3000), 1u8).unwrap();
        assert_eq!(l.front(ps(3000)), Some(&1));
    }

    #[test]
    fn occupancy_histogram_and_peak() {
        let mut l = Link::pipe();
        for i in 0..5u32 {
            l.push_at(ps(0), i);
        }
        let s = l.stats();
        assert_eq!(s.peak_occupancy, 5);
        // Occupancies after each push: 1, 2, 3, 4, 5 -> buckets 0,1,1,2,2.
        assert_eq!(s.occupancy_hist[0], 1);
        assert_eq!(s.occupancy_hist[1], 2);
        assert_eq!(s.occupancy_hist[2], 2);
    }

    #[test]
    fn frozen_link_rejects_and_hides_then_recovers() {
        let mut l = Link::sync(4, ps(0));
        l.push(ps(0), 1u8).unwrap();
        l.set_frozen(true);
        assert!(l.is_frozen());
        assert!(!l.can_push(ps(1000)));
        assert!(l.push(ps(1000), 2u8).is_err());
        assert_eq!(l.stats().rejected_pushes, 1);
        assert!(l.front(ps(1000)).is_none());
        assert!(l.pop(ps(1000)).is_none());
        assert!(l.front_ready_at().is_none());
        assert_eq!(l.len(), 1, "contents preserved while frozen");
        l.set_frozen(false);
        assert_eq!(l.pop(ps(1000)), Some(1), "entry reappears after thaw");
        assert!(l.can_push(ps(1000)));
    }

    #[test]
    fn clear_preserves_counters() {
        let mut l = Link::sync(4, ps(0));
        l.push(ps(0), 1u8).unwrap();
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.stats().pushes, 1);
    }
}
