//! Sharded-execution primitives: a deterministic contiguous partitioner
//! and the epoch barrier that synchronizes per-shard worker threads.
//!
//! The intra-run parallel loop (see `duet-system`) slices the component
//! graph into contiguous node ranges — one shard per simulation thread —
//! and runs each shard's per-edge component passes concurrently between
//! two deterministic barriers. Everything here is host-side machinery:
//! shard *count* and shard *boundaries* are pure functions of the
//! configuration, and the merge order after each barrier is fixed, so
//! simulation results are bit-identical for any thread count.
//!
//! The conservative lookahead bound for this design degenerates to a
//! single clock edge: every cross-shard `Link` (the mesh hop FIFOs and
//! the per-node injection pipes) has next-edge visibility, so a message
//! produced at edge *k* can be consumed at edge *k+1* — shards therefore
//! synchronize every executed edge, and the event-horizon scheduler keeps
//! the edge count itself low. [`EpochBarrier`] makes that per-edge
//! synchronization cheap: an epoch open is one atomic store plus one
//! load, and workers spin briefly before yielding (and eventually parking
//! on a condvar, so an idle pool costs nothing between runs).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Splits `weights.len()` items into at most `parts` contiguous,
/// non-empty ranges with approximately equal total weight.
///
/// The split is deterministic (greedy left-to-right against the remaining
/// average) and every item lands in exactly one range, so concatenating
/// the ranges in order always re-yields `0..weights.len()`. Fewer ranges
/// than requested come back when there are fewer items than parts.
pub fn partition_balanced(weights: &[u64], parts: usize) -> Vec<std::ops::Range<usize>> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let k = parts.clamp(1, n);
    let total: u64 = weights.iter().sum();
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut used = 0u64;
    for p in 0..k {
        let parts_left = (k - p) as u64;
        // Leave at least one item for every remaining part.
        let max_end = n - (k - p - 1);
        let target = ((total - used) / parts_left).max(1);
        let mut end = start + 1;
        let mut w = weights[start];
        while end < max_end && w + weights[end] / 2 < target {
            w += weights[end];
            end += 1;
        }
        if p == k - 1 {
            end = n;
        }
        used += weights[start..end].iter().sum::<u64>();
        out.push(start..end);
        start = end;
    }
    out
}

/// Per-item load EWMAs folded at fixed simulated-time quanta, feeding the
/// adaptive shard rebalancer.
///
/// Work counters accumulate in a caller-owned `accum` array between folds;
/// [`fold`](LoadEwma::fold) halves each EWMA into the new quantum
/// (`v = (v + accum) / 2`) and applies one extra pure-decay halving per
/// *additionally* elapsed quantum. Because the fold is checked before every
/// executed tick, all accumulated work belongs to the quantum of the last
/// fold — so folding once with `k` decay steps is bit-identical to folding
/// at every quantum boundary exhaustively, which is what keeps the shard
/// layout a pure function of simulated state under edge-skip (skipped idle
/// quanta contribute exactly the decay they would have contributed had
/// their edges executed).
#[derive(Clone, Debug)]
pub struct LoadEwma {
    values: Vec<u64>,
    last_quantum: u64,
}

impl LoadEwma {
    /// EWMAs for `items` load counters, all starting at zero.
    pub fn new(items: usize) -> Self {
        LoadEwma {
            values: vec![0; items],
            last_quantum: 0,
        }
    }

    /// The folded per-item load values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Folds `accum` into the EWMAs if `quantum` advanced past the last
    /// fold, zeroing `accum`. Returns whether any value changed (callers
    /// skip repartitioning when nothing did, so a long-idle mesh pays
    /// nothing per tick). Decay steps are capped: every tracked value is
    /// far below 2^63, so enough halvings reach zero exactly as an
    /// uncapped chain would.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) if `accum` has a different length than
    /// the EWMA array.
    pub fn fold(&mut self, accum: &mut [u64], quantum: u64) -> bool {
        debug_assert_eq!(accum.len(), self.values.len());
        if quantum <= self.last_quantum {
            return false;
        }
        let steps = (quantum - self.last_quantum).min(64);
        self.last_quantum = quantum;
        let mut changed = false;
        for (v, a) in self.values.iter_mut().zip(accum.iter_mut()) {
            let old = *v;
            let mut nv = (*v + *a) / 2;
            for _ in 1..steps {
                nv /= 2;
            }
            *a = 0;
            if nv != old {
                changed = true;
            }
            *v = nv;
        }
        changed
    }

    /// Resets every EWMA and the quantum cursor to the initial state (used
    /// after a snapshot restore: the rebalancer is host-side machinery and
    /// re-learns the load profile from zero).
    pub fn reset(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0);
        self.last_quantum = 0;
    }
}

/// A reusable two-phase barrier for per-edge fork/join between one
/// coordinator and `workers` persistent worker threads.
///
/// Per epoch: the coordinator publishes work, calls
/// [`open`](EpochBarrier::open) (one store plus a conditional wake),
/// does its own share, then [`wait_done`](EpochBarrier::wait_done).
/// Workers block in [`wait_open`](EpochBarrier::wait_open) — spinning
/// briefly, then yielding, then parking on a condvar so an idle pool
/// burns no CPU — and report with [`finish`](EpochBarrier::finish).
///
/// The barrier carries no payload; the ordering on the epoch and done
/// counters (SeqCst publish — see [`open`](EpochBarrier::open) — and
/// release/acquire completion) makes everything written before `open`
/// visible to workers, and everything workers wrote visible after
/// `wait_done`.
#[derive(Debug)]
pub struct EpochBarrier {
    epoch: AtomicU64,
    done: Vec<AtomicU64>,
    quit: AtomicBool,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

/// Spin iterations before a waiting thread starts yielding.
const SPINS: u32 = 128;
/// Yield iterations before a worker parks on the condvar.
const YIELDS: u32 = 64;

impl EpochBarrier {
    /// A barrier coordinating `workers` worker threads (the coordinator
    /// is not counted).
    pub fn new(workers: usize) -> Self {
        EpochBarrier {
            epoch: AtomicU64::new(0),
            done: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            quit: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Number of worker threads this barrier coordinates.
    pub fn workers(&self) -> usize {
        self.done.len()
    }

    /// Opens epoch `epoch` (must be strictly increasing). Everything the
    /// coordinator wrote before this call is visible to workers returning
    /// from [`wait_open`](EpochBarrier::wait_open).
    pub fn open(&self, epoch: u64) {
        // Store-buffer (Dekker) pattern against a parking worker, which
        // does `sleepers.fetch_add(SeqCst)` and then re-checks the epoch
        // before waiting on the condvar. All four accesses must be SeqCst:
        // in the single total order that gives, the coordinator reading
        // `sleepers == 0` (skipping the notify) while the worker reads the
        // stale epoch (and parks) is impossible. A Release store here
        // could be reordered after the `sleepers` load (StoreLoad — legal
        // even on x86), losing the wakeup and hanging `wait_done`.
        self.epoch.store(epoch, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.lock.lock().unwrap();
            self.cv.notify_all();
        }
    }

    fn poll(&self, last_seen: u64) -> Option<Option<u64>> {
        if self.quit.load(Ordering::Acquire) {
            return Some(None);
        }
        // SeqCst pairs with the SeqCst publish in `open` — see the
        // store-buffer note there. (On the spin path plain Acquire would
        // do, but a SeqCst load costs the same on the hot architectures
        // and keeps one ordering story for every reader.)
        let e = self.epoch.load(Ordering::SeqCst);
        if e > last_seen {
            return Some(Some(e));
        }
        None
    }

    /// Blocks a worker until an epoch newer than `last_seen` opens.
    /// Returns `None` once [`shutdown`](EpochBarrier::shutdown) is called.
    pub fn wait_open(&self, last_seen: u64) -> Option<u64> {
        for _ in 0..SPINS {
            if let Some(r) = self.poll(last_seen) {
                return r;
            }
            std::hint::spin_loop();
        }
        for _ in 0..YIELDS {
            if let Some(r) = self.poll(last_seen) {
                return r;
            }
            std::thread::yield_now();
        }
        let mut g = self.lock.lock().unwrap();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let r = loop {
            if let Some(r) = self.poll(last_seen) {
                break r;
            }
            g = self.cv.wait(g).unwrap();
        };
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
        r
    }

    /// Worker `worker` reports its share of epoch `epoch` complete.
    pub fn finish(&self, worker: usize, epoch: u64) {
        self.done[worker].store(epoch, Ordering::Release);
    }

    /// Blocks the coordinator until every worker has finished `epoch`.
    /// The coordinator spins/yields but never parks: by the time it gets
    /// here it has finished its own shard and the workers are close
    /// behind.
    pub fn wait_done(&self, epoch: u64) {
        for d in &self.done {
            let mut spins = 0u32;
            while d.load(Ordering::Acquire) < epoch {
                if spins < SPINS {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Tells every worker to exit its `wait_open` loop.
    pub fn shutdown(&self) {
        self.quit.store(true, Ordering::SeqCst);
        let _g = self.lock.lock().unwrap();
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn partition_covers_everything_in_order() {
        for n in 1..40usize {
            for k in 1..10usize {
                let weights: Vec<u64> = (0..n as u64).map(|i| 1 + i % 7).collect();
                let parts = partition_balanced(&weights, k);
                assert!(parts.len() <= k.min(n));
                assert!(!parts.is_empty());
                let mut next = 0;
                for r in &parts {
                    assert_eq!(r.start, next, "contiguous, ascending");
                    assert!(r.end > r.start, "non-empty");
                    next = r.end;
                }
                assert_eq!(next, n, "full coverage");
            }
        }
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let weights = vec![1u64; 64];
        let parts = partition_balanced(&weights, 4);
        assert_eq!(parts.len(), 4);
        for r in &parts {
            assert!(r.len() >= 8, "no starved shard: {parts:?}");
        }
    }

    #[test]
    fn partition_more_parts_than_items_degrades() {
        let parts = partition_balanced(&[5, 5], 8);
        assert_eq!(parts, vec![0..1, 1..2]);
        assert!(partition_balanced(&[], 4).is_empty());
    }

    #[test]
    fn barrier_synchronizes_epochs() {
        let workers = 3;
        let barrier = Arc::new(EpochBarrier::new(workers));
        let hits: Arc<Vec<AtomicU64>> = Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let b = Arc::clone(&barrier);
                let h = Arc::clone(&hits);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while let Some(ep) = b.wait_open(last) {
                        last = ep;
                        h[w].fetch_add(1, Ordering::SeqCst);
                        b.finish(w, ep);
                    }
                })
            })
            .collect();
        for ep in 1..=50u64 {
            barrier.open(ep);
            barrier.wait_done(ep);
            for h in hits.iter() {
                assert_eq!(h.load(Ordering::SeqCst), ep, "lockstep at epoch {ep}");
            }
        }
        barrier.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn ewma_fold_skips_stale_quanta_exactly() {
        // Folding once after k quanta must equal folding at every quantum
        // boundary when the skipped quanta carried no work.
        let mut skip = LoadEwma::new(3);
        let mut exhaustive = LoadEwma::new(3);
        let mut accum_a = [40u64, 7, 0];
        let mut accum_b = [40u64, 7, 0];
        // Work accumulated during quantum 0; skip jumps straight to q=4.
        assert!(skip.fold(&mut accum_a, 4));
        for q in 1..=4 {
            exhaustive.fold(&mut accum_b, q);
        }
        assert_eq!(skip.values(), exhaustive.values());
        assert_eq!(skip.values(), &[2, 0, 0]); // (40/2)/2/2/2, (7/2)>>3, 0
        assert_eq!(accum_a, [0, 0, 0], "fold zeroes the accumulators");
    }

    #[test]
    fn ewma_fold_reports_change_and_idles_quietly() {
        let mut e = LoadEwma::new(2);
        let mut accum = [8u64, 0];
        assert!(e.fold(&mut accum, 1), "new work changes values: 0 -> 4");
        assert!(
            e.fold(&mut accum, 2),
            "decay changes a non-zero value: 4 -> 2"
        );
        assert!(e.fold(&mut accum, 3), "2 -> 1");
        assert!(e.fold(&mut accum, 4), "1 -> 0");
        assert!(
            !e.fold(&mut accum, 5),
            "all-zero idle fold reports no change"
        );
        assert!(!e.fold(&mut accum, 5), "stale quantum is a no-op");
        e.reset();
        assert_eq!(e.values(), &[0, 0]);
        let mut accum2 = [u64::MAX / 4, 1];
        // A huge gap fully decays even large values (cap is exact, not lossy).
        assert!(e.fold(&mut accum2, 1));
        assert!(e.fold(&mut accum2, 100_000), "huge value decays to zero");
        assert_eq!(e.values(), &[0, 0]);
    }

    /// Regression test for the lost-wakeup race: pause long enough before
    /// each `open` that workers exhaust their spin/yield budget and park
    /// on the condvar, so every epoch must actually wake a sleeper. With
    /// a non-SeqCst epoch publish this hangs (coordinator misses the
    /// sleeper, worker misses the epoch) rather than failing an assert.
    #[test]
    fn barrier_wakes_parked_workers() {
        let workers = 2;
        let barrier = Arc::new(EpochBarrier::new(workers));
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut last = 0;
                    while let Some(ep) = b.wait_open(last) {
                        last = ep;
                        b.finish(w, ep);
                    }
                })
            })
            .collect();
        for ep in 1..=30u64 {
            std::thread::sleep(std::time::Duration::from_millis(3));
            barrier.open(ep);
            barrier.wait_done(ep);
        }
        barrier.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }
}
