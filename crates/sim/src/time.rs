//! Simulation time, measured in picoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or duration of) simulation time, in picoseconds.
///
/// Picosecond resolution lets a 1 GHz system clock (1000 ps period) coexist
/// with eFPGA clocks at arbitrary frequencies (e.g. 127 MHz ≈ 7874 ps) without
/// accumulating rounding error over the lengths of runs this workspace
/// performs (≲ 10 ms of simulated time).
///
/// # Example
///
/// ```
/// use duet_sim::Time;
/// let t = Time::from_ns(5) + Time::from_ps(250);
/// assert_eq!(t.as_ps(), 5250);
/// assert_eq!(t.as_ns_f64(), 5.25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero — the beginning of simulation.
    pub const ZERO: Time = Time(0);

    /// The largest representable time; used as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw picosecond count.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a time from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Time(us * 1_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time in nanoseconds, as a float (lossless for small values).
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time in microseconds, as a float.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction: returns `ZERO` instead of underflowing.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Multiplies a duration by an integer count.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, n: u64) -> Time {
        Time(self.0 * n)
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(Time::from_ns(3).as_ps(), 3000);
        assert_eq!(Time::from_us(2).as_ps(), 2_000_000);
        assert_eq!(Time::from_ps(1500).as_ns_f64(), 1.5);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(4);
        assert_eq!((a + b).as_ps(), 14_000);
        assert_eq!((a - b).as_ps(), 6_000);
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(b.mul(3).as_ps(), 12_000);
    }

    #[test]
    fn ordering() {
        assert!(Time::from_ns(1) < Time::from_ns(2));
        assert!(Time::ZERO < Time::MAX);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Time::from_ps(500)), "500ps");
        assert_eq!(format!("{}", Time::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", Time::from_us(7)), "7.000us");
    }

    #[test]
    fn add_assign_sub_assign() {
        let mut t = Time::from_ns(1);
        t += Time::from_ns(2);
        assert_eq!(t, Time::from_ns(3));
        t -= Time::from_ns(1);
        assert_eq!(t, Time::from_ns(2));
    }
}
