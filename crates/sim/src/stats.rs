//! Statistics, counters, and the latency-attribution breakdown used to
//! regenerate the stacked bars of Fig. 9.

use std::fmt;

use crate::time::Time;

/// A named monotonic event counter.
///
/// Counters always carry a name — construct with [`Counter::new`]. (There
/// is deliberately no `Default`: a defaulted counter would have an empty
/// name, which renders as a bare `" = N"` line in reports and collides
/// with every other unnamed counter in a metrics namespace.)
///
/// # Example
///
/// ```
/// use duet_sim::Counter;
/// let mut c = Counter::new("l2.hits");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

impl crate::snapshot::Snap for Counter {
    /// Only the value is state; the name is fixed at construction.
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        w.u64(self.value);
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        self.value = r.u64()?;
        Ok(())
    }
}

impl crate::snapshot::Snap for RunningStats {
    fn save(&self, w: &mut crate::snapshot::SnapWriter) {
        use crate::snapshot::Pack;
        self.count.pack(w);
        self.mean.pack(w);
        self.m2.pack(w);
        self.min.pack(w);
        self.max.pack(w);
    }
    fn load(
        &mut self,
        r: &mut crate::snapshot::SnapReader<'_>,
    ) -> Result<(), crate::snapshot::SnapError> {
        use crate::snapshot::Pack;
        self.count = u64::unpack(r)?;
        self.mean = f64::unpack(r)?;
        self.m2 = f64::unpack(r)?;
        self.min = f64::unpack(r)?;
        self.max = f64::unpack(r)?;
        Ok(())
    }
}

/// Online mean/min/max/count accumulator (Welford's variance).
#[derive(Clone, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// Per-transaction latency attribution, mirroring the four stacked segments
/// of Fig. 9: NoC time, cache processing in the fast clock domain, cache
/// processing in the slow (eFPGA) clock domain, and clock-domain-crossing
/// overhead.
///
/// Every memory/MMIO transaction in the simulator carries one of these and
/// each component adds the wall-clock time the transaction spent under its
/// control to the appropriate bucket, so `total()` equals the measured
/// round-trip latency by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Time spent traversing the network-on-chip.
    pub noc: Time,
    /// Cache/adapter processing time in the fast (system) clock domain.
    pub cache_fast: Time,
    /// Cache/accelerator processing time in the slow (eFPGA) clock domain.
    pub cache_slow: Time,
    /// Clock-domain-crossing (async FIFO synchronizer) overhead.
    pub cdc: Time,
}

impl LatencyBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all four segments.
    pub fn total(&self) -> Time {
        self.noc + self.cache_fast + self.cache_slow + self.cdc
    }

    /// Element-wise sum.
    pub fn merged(&self, other: &LatencyBreakdown) -> LatencyBreakdown {
        LatencyBreakdown {
            noc: self.noc + other.noc,
            cache_fast: self.cache_fast + other.cache_fast,
            cache_slow: self.cache_slow + other.cache_slow,
            cdc: self.cdc + other.cdc,
        }
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        *self = self.merged(other);
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "noc={} fast={} slow={} cdc={} (total {})",
            self.noc,
            self.cache_fast,
            self.cache_slow,
            self.cdc,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("x");
        assert_eq!(c.value(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c.name(), "x");
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn running_stats() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for x in [2.0, 4.0, 6.0, 8.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(8.0));
        assert!((s.variance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_total_and_merge() {
        let a = LatencyBreakdown {
            noc: Time::from_ns(3),
            cache_fast: Time::from_ns(2),
            cache_slow: Time::from_ns(10),
            cdc: Time::from_ns(8),
        };
        assert_eq!(a.total(), Time::from_ns(23));
        let mut b = LatencyBreakdown::new();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.total(), Time::from_ns(46));
        assert_eq!(b.noc, Time::from_ns(6));
    }
}
