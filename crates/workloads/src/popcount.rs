//! **Popcount** (P1M1, fine-grained acceleration; Sec. V-D).
//!
//! Counts the ones in 512-bit vectors. "Since the Ariane processor does not
//! support the RISC-V BitManip Extension, we use a byte look-up algorithm
//! for the processor-only baseline. The accelerator is hand-written in
//! Verilog and uses one Memory Hub to load the bit vector from coherent
//! memory."

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};

/// Accelerator clock from Table II.
pub const POPCOUNT_MHZ: f64 = 189.0;

const VEC_BYTES: u64 = 64; // 512 bits
const LINES_PER_VEC: u64 = VEC_BYTES / 16;

/// Memory layout of the benchmark.
#[derive(Clone, Copy, Debug)]
pub struct PopcountLayout {
    /// Base of the vector array.
    pub vectors: u64,
    /// Base of the output counts (u64 each).
    pub out: u64,
    /// Byte-popcount lookup table (256 × 1 B), baseline only.
    pub lut: u64,
    /// Number of vectors.
    pub n: u64,
}

impl PopcountLayout {
    /// Default layout for `n` vectors.
    pub fn new(n: u64) -> Self {
        PopcountLayout {
            vectors: 0x1_0000,
            out: 0x3_0000,
            lut: 0x4_0000,
            n,
        }
    }
}

/// The hand-written popcount accelerator: one argument register carries the
/// vector address; the design streams the four lines through the Memory
/// Hub (one load per cycle, fills pipelined) and a compressor tree reduces
/// them in a single cycle.
pub struct PopcountAccel {
    regs: FabricRegFile,
    issued: u64,
    fills: u64,
    acc: u64,
    cur: Option<u64>,
}

impl PopcountAccel {
    /// Creates the design (`push_mode` per system variant).
    pub fn new(push_mode: bool) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(1);
        PopcountAccel {
            regs,
            issued: 0,
            fills: 0,
            acc: 0,
            cur: None,
        }
    }
}

impl SoftAccelerator for PopcountAccel {
    fn name(&self) -> &str {
        "popcount"
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);
        if self.cur.is_none() {
            if let Some(addr) = self.regs.pop_write(0) {
                self.cur = Some(addr);
                self.issued = 0;
                self.fills = 0;
                self.acc = 0;
            }
        }
        if let Some(addr) = self.cur {
            // Drain fills.
            while let Some(resp) = ports.hubs[0].pop_resp(now) {
                if let FpgaRespKind::LoadAck { data } = resp.kind {
                    self.acc += data
                        .iter()
                        .map(|b| u64::from(b.count_ones() as u8))
                        .sum::<u64>();
                    self.fills += 1;
                }
            }
            // Issue one load per cycle.
            if self.issued < LINES_PER_VEC {
                let a = addr + self.issued * 16;
                if ports.hubs[0].load_line(now, self.issued + 1, a) {
                    self.issued += 1;
                }
            }
            if self.fills == LINES_PER_VEC {
                self.regs.push_result(1, self.acc);
                self.cur = None;
            }
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (popcount: 189 MHz, norm. area 2.77,
        // CLB 0.83, BRAM 0.56).
        NetlistSummary {
            name: "popcount",
            luts: 9420,
            ffs: 13188,
            bram_kbits: 3392,
            mults: 0,
            logic_levels: 2,
        }
    }

    fn reset(&mut self) {
        self.cur = None;
    }

    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.issued.pack(w);
        self.fills.pack(w);
        self.acc.pack(w);
        self.cur.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.issued = Pack::unpack(r)?;
        self.fills = Pack::unpack(r)?;
        self.acc = Pack::unpack(r)?;
        self.cur = Pack::unpack(r)?;
        Ok(())
    }
}

/// Generates `n` random vectors and their expected counts.
pub fn generate(n: u64, seed: u64) -> (Vec<u8>, Vec<u64>) {
    let mut rng = SimRng::new(seed);
    let mut bytes = vec![0u8; (n * VEC_BYTES) as usize];
    for b in bytes.iter_mut() {
        *b = rng.next_u64() as u8;
    }
    let expected = (0..n)
        .map(|v| {
            bytes[(v * VEC_BYTES) as usize..((v + 1) * VEC_BYTES) as usize]
                .iter()
                .map(|b| u64::from(b.count_ones() as u8))
                .sum()
        })
        .collect();
    (bytes, expected)
}

fn install_data(sys: &mut System, layout: &PopcountLayout, bytes: &[u8]) {
    sys.poke_bytes(layout.vectors, bytes);
    // Baseline LUT.
    let lut: Vec<u8> = (0..=255u8).map(|b| b.count_ones() as u8).collect();
    sys.poke_bytes(layout.lut, &lut);
}

fn check(sys: &System, layout: &PopcountLayout, expected: &[u64]) -> bool {
    (0..layout.n).all(|v| sys.peek_u64(layout.out + v * 8) == expected[v as usize])
}

/// Scores a system built by [`prepare`]: layout plus expected counts.
pub struct PopcountCheck {
    layout: PopcountLayout,
    expected: Vec<u64>,
}

impl PopcountCheck {
    /// Whether every output count matches the reference.
    pub fn check(&self, sys: &System) -> bool {
        check(sys, &self.layout, &self.expected)
    }
}

/// Builds a ready-to-run popcount system — data installed, program loaded,
/// accelerator attached (for the accelerated variants), caches warmed (for
/// the baseline) — without running it. `faults` is folded into the system
/// config before construction, so callers (the service layer, fault
/// harnesses) can schedule deterministic fault windows around the workload
/// and drive the run through the `Result`-typed run APIs themselves.
pub fn prepare(
    variant: BenchVariant,
    n: u64,
    seed: u64,
    faults: duet_system::FaultPlan,
) -> (System, PopcountCheck) {
    let layout = PopcountLayout::new(n);
    let (bytes, expected) = generate(n, seed);
    let mut cfg = variant.system_config(1, 1, POPCOUNT_MHZ);
    cfg.faults = faults;
    let mut sys = System::new(cfg).expect("valid config");
    install_data(&mut sys, &layout, &bytes);

    let prog = match variant {
        BenchVariant::ProcOnly => {
            // Byte-LUT loop over every vector.
            let mut a = Asm::new();
            a.label("main");
            let (vbase, obase, lbase) = (regs::S[0], regs::S[1], regs::S[2]);
            let (v, cnt, i) = (regs::S[3], regs::S[4], regs::S[5]);
            a.li(vbase, layout.vectors as i64);
            a.li(obase, layout.out as i64);
            a.li(lbase, layout.lut as i64);
            a.li(v, 0);
            a.label("vec");
            a.li(cnt, 0);
            a.li(i, 0);
            a.label("byte");
            // t0 = vectors[v*64 + i]
            a.add(regs::T[0], vbase, i);
            a.lbu(regs::T[1], regs::T[0], 0);
            // t2 = lut[t1]
            a.add(regs::T[2], lbase, regs::T[1]);
            a.lbu(regs::T[3], regs::T[2], 0);
            a.add(cnt, cnt, regs::T[3]);
            a.addi(i, i, 1);
            a.li(regs::T[4], VEC_BYTES as i64);
            a.blt(i, regs::T[4], "byte");
            a.sd(cnt, obase, 0);
            a.addi(obase, obase, 8);
            a.addi(vbase, vbase, VEC_BYTES as i64);
            a.addi(v, v, 1);
            a.li(regs::T[4], n as i64);
            a.blt(v, regs::T[4], "vec");
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
        _ => {
            // Invoke the accelerator per vector: write addr, read count.
            let base = sys.config().mmio_base;
            sys.set_reg_mode(0, RegMode::FpgaBound);
            sys.set_reg_mode(1, RegMode::CpuBound);
            sys.attach_accelerator(Box::new(PopcountAccel::new(variant.push_mode())));
            let mut a = Asm::new();
            a.label("main");
            let (vaddr, obase, v) = (regs::S[0], regs::S[1], regs::S[2]);
            let (arg, res) = (regs::S[3], regs::S[4]);
            a.li(vaddr, layout.vectors as i64);
            a.li(obase, layout.out as i64);
            a.li(arg, base as i64);
            a.li(res, (base + 8) as i64);
            a.li(v, 0);
            a.label("vec");
            a.sd(vaddr, arg, 0); // invoke
            a.ld(regs::T[0], res, 0); // blocking result read
            a.sd(regs::T[0], obase, 0);
            a.addi(obase, obase, 8);
            a.addi(vaddr, vaddr, VEC_BYTES as i64);
            a.addi(v, v, 1);
            a.li(regs::T[4], n as i64);
            a.blt(v, regs::T[4], "vec");
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
    };
    sys.load_program(0, Arc::new(prog), "main");
    if variant == BenchVariant::ProcOnly {
        // Warm start (Sec. V-A): baseline data resident.
        sys.warm_shared(layout.vectors, n * VEC_BYTES, 0);
        sys.warm_shared(layout.lut, 256, 0);
    }
    (sys, PopcountCheck { layout, expected })
}

/// Runs the popcount benchmark on the given variant.
pub fn run(variant: BenchVariant, n: u64, seed: u64) -> AppResult {
    let (mut sys, scorer) = prepare(variant, n, seed, duet_system::FaultPlan::empty());
    let runtime = sys
        .run_until_halt(Time::from_us(200_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(400_000))
        .unwrap_or_else(|e| panic!("{e}"));
    AppResult {
        name: "popcount".into(),
        variant,
        processors: 1,
        memory_hubs: 1,
        fpga_mhz: POPCOUNT_MHZ,
        runtime,
        correct: scorer.check(&sys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_compute_correct_counts() {
        for v in [
            BenchVariant::ProcOnly,
            BenchVariant::Duet,
            BenchVariant::Fpsoc,
        ] {
            let r = run(v, 6, 42);
            assert!(r.correct, "{} produced wrong counts", v.label());
        }
    }

    #[test]
    fn duet_beats_proc_only_and_fpsoc() {
        let base = run(BenchVariant::ProcOnly, 8, 7);
        let duet = run(BenchVariant::Duet, 8, 7);
        let fpsoc = run(BenchVariant::Fpsoc, 8, 7);
        assert!(base.correct && duet.correct && fpsoc.correct);
        let s_duet = duet.speedup_over(&base);
        let s_fpsoc = fpsoc.speedup_over(&base);
        assert!(s_duet > 1.0, "Duet speedup {s_duet:.2} must exceed 1");
        assert!(
            s_duet > s_fpsoc,
            "Duet ({s_duet:.2}x) must beat FPSoC ({s_fpsoc:.2}x)"
        );
    }
}
