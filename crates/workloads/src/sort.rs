//! **Sort** (P1M2, fine-grained acceleration; Sec. V-D).
//!
//! "We use the SPIRAL Project to generate 3 sorting networks in Verilog for
//! sorting 32, 64, 128 double-word (4-Byte) integers. The accelerator uses
//! two memory hubs, one for reading the input array from coherent memory
//! and one for writing the sorted array back, so that the accelerator can
//! be pipelined to sort fixed-length slices of a larger array which can
//! then be merge-sorted by the processor. The processor-only baseline runs
//! quicksort on the entire array."

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_mem::types::Width;
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};

/// Accelerator clock per network size (Table II).
pub fn sort_mhz(slice: u64) -> f64 {
    match slice {
        32 => 228.0,
        64 => 234.0,
        _ => 228.0,
    }
}

#[derive(Clone, Debug)]
struct LoadJob {
    slice_no: u64,
    issued: u64,
    filled: u64,
    vals: Vec<u32>,
}

#[derive(Clone, Debug)]
struct StoreJob {
    slice_no: u64,
    ready_tick: u64,
    vals: Vec<u32>,
    next: u64,
    acks: u64,
}

/// The streaming sorting-network accelerator: hub 0 reads input slices,
/// hub 1 writes sorted slices back. The two engines run concurrently —
/// "the accelerator can be pipelined to sort fixed-length slices of a
/// larger array" — so slice k+1 streams in while slice k streams out,
/// separated by the `log²(n)`-stage network.
pub struct SortAccel {
    regs: FabricRegFile,
    slice: u64,
    ticks: u64,
    loading: Option<LoadJob>,
    storing: Option<StoreJob>,
    drained: std::collections::VecDeque<StoreJob>,
    src_base: u64,
    dst_base: u64,
}

impl SortAccel {
    /// Creates a network for `slice` elements (32/64/128).
    pub fn new(push_mode: bool, slice: u64) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(1);
        SortAccel {
            regs,
            slice,
            ticks: 0,
            loading: None,
            storing: None,
            drained: std::collections::VecDeque::new(),
            src_base: 0,
            dst_base: 0,
        }
    }

    fn network_depth(&self) -> u64 {
        // Bitonic network: log2(n) * (log2(n)+1) / 2 stages.
        let l = 64 - (self.slice - 1).leading_zeros() as u64;
        l * (l + 1) / 2
    }
}

impl duet_sim::Pack for LoadJob {
    fn pack(&self, w: &mut duet_sim::SnapWriter) {
        self.slice_no.pack(w);
        self.issued.pack(w);
        self.filled.pack(w);
        self.vals.pack(w);
    }

    fn unpack(r: &mut duet_sim::SnapReader<'_>) -> Result<Self, duet_sim::SnapError> {
        use duet_sim::Pack;
        Ok(LoadJob {
            slice_no: Pack::unpack(r)?,
            issued: Pack::unpack(r)?,
            filled: Pack::unpack(r)?,
            vals: Pack::unpack(r)?,
        })
    }
}

impl duet_sim::Pack for StoreJob {
    fn pack(&self, w: &mut duet_sim::SnapWriter) {
        self.slice_no.pack(w);
        self.ready_tick.pack(w);
        self.vals.pack(w);
        self.next.pack(w);
        self.acks.pack(w);
    }

    fn unpack(r: &mut duet_sim::SnapReader<'_>) -> Result<Self, duet_sim::SnapError> {
        use duet_sim::Pack;
        Ok(StoreJob {
            slice_no: Pack::unpack(r)?,
            ready_tick: Pack::unpack(r)?,
            vals: Pack::unpack(r)?,
            next: Pack::unpack(r)?,
            acks: Pack::unpack(r)?,
        })
    }
}

impl SoftAccelerator for SortAccel {
    fn name(&self) -> &str {
        "sort"
    }

    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.ticks.pack(w);
        self.loading.pack(w);
        self.storing.pack(w);
        self.drained.pack(w);
        self.src_base.pack(w);
        self.dst_base.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.ticks = Pack::unpack(r)?;
        self.loading = Pack::unpack(r)?;
        self.storing = Pack::unpack(r)?;
        self.drained = Pack::unpack(r)?;
        self.src_base = Pack::unpack(r)?;
        self.dst_base = Pack::unpack(r)?;
        Ok(())
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.ticks += 1;
        self.regs.tick(now, &mut ports.regs);
        self.src_base = self.regs.value(2).max(self.src_base);
        self.dst_base = self.regs.value(3).max(self.dst_base);
        if ports.hubs.len() < 2 {
            self.regs.tick(now, &mut ports.regs);
            return;
        }

        // --- load engine (hub 0): one line fill per cycle ---
        while let Some(resp) = ports.hubs[0].pop_resp(now) {
            if let FpgaRespKind::LoadAck { data } = resp.kind {
                if let Some(job) = &mut self.loading {
                    for k in 0..4 {
                        let v = u32::from_le_bytes(data[k * 4..k * 4 + 4].try_into().unwrap());
                        job.vals.push(v);
                    }
                    job.filled += 1;
                }
            }
        }
        if self.loading.is_none() {
            if let Some(slice_no) = self.regs.pop_write(0) {
                self.loading = Some(LoadJob {
                    slice_no,
                    issued: 0,
                    filled: 0,
                    vals: Vec::with_capacity(self.slice as usize),
                });
            }
        }
        let lines = self.slice / 4;
        let mut load_done = false;
        if let Some(job) = &mut self.loading {
            if job.issued < lines {
                let src = self.src_base + job.slice_no * self.slice * 4;
                if ports.hubs[0].load_line(now, job.issued + 1, src + job.issued * 16) {
                    job.issued += 1;
                }
            } else if job.filled == lines {
                load_done = true;
            }
        }
        if load_done {
            let mut job = self.loading.take().unwrap();
            job.vals.sort_unstable(); // the network's function
            self.drained.push_back(StoreJob {
                slice_no: job.slice_no,
                ready_tick: self.ticks + self.network_depth(),
                vals: job.vals,
                next: 0,
                acks: 0,
            });
        }

        // --- store engine (hub 1): one 8-byte store per cycle ("the L2
        // only supports stores up to 8 Bytes", Sec. V-C) ---
        while let Some(resp) = ports.hubs[1].pop_resp(now) {
            if let FpgaRespKind::StoreAck { .. } = resp.kind {
                if let Some(job) = &mut self.storing {
                    job.acks += 1;
                    if job.acks == self.slice / 2 {
                        self.regs.push_result(1, job.slice_no);
                        self.storing = None;
                    }
                }
            }
        }
        if self.storing.is_none() {
            if let Some(front) = self.drained.front() {
                if front.ready_tick <= self.ticks {
                    self.storing = Some(self.drained.pop_front().unwrap());
                }
            }
        }
        if let Some(job) = &mut self.storing {
            if job.next < self.slice / 2 {
                let lo = job.vals[(job.next * 2) as usize] as u64;
                let hi = job.vals[(job.next * 2 + 1) as usize] as u64;
                let packed = lo | (hi << 32);
                let dst = self.dst_base + job.slice_no * self.slice * 4;
                if ports.hubs[1].store(now, 1000 + job.next, dst + job.next * 8, Width::B8, packed)
                {
                    job.next += 1;
                }
            }
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (sort32: 228 MHz / 6.29 / CLB 0.30 /
        // BRAM 0.76; sort64: 234 / 8.10 / 0.27 / 0.92; sort128: 228 /
        // 10.27 / 0.27 / 0.92).
        match self.slice {
            32 => NetlistSummary {
                name: "sort32",
                luts: 7560,
                ffs: 10584,
                bram_kbits: 12128,
                mults: 0,
                logic_levels: 2,
            },
            64 => NetlistSummary {
                name: "sort64",
                luts: 8990,
                ffs: 12586,
                bram_kbits: 15904,
                mults: 0,
                logic_levels: 1,
            },
            _ => NetlistSummary {
                name: "sort128",
                luts: 11470,
                ffs: 16058,
                bram_kbits: 20192,
                mults: 0,
                logic_levels: 1,
            },
        }
    }

    fn reset(&mut self) {
        self.loading = None;
        self.storing = None;
        self.drained.clear();
    }
}

/// Memory layout.
#[derive(Clone, Copy, Debug)]
pub struct SortLayout {
    /// Unsorted input (u32 each).
    pub input: u64,
    /// Accelerator slice output region.
    pub slices: u64,
    /// Final sorted output.
    pub out: u64,
    /// Quicksort stack region (baseline).
    pub stack: u64,
    /// Element count.
    pub n: u64,
}

impl SortLayout {
    /// Default layout.
    pub fn new(n: u64) -> Self {
        SortLayout {
            input: 0x1_0000,
            slices: 0x2_0000,
            out: 0x3_0000,
            stack: 0x4_0000,
            n,
        }
    }
}

/// Emits iterative quicksort over u32 `a[base..base+n)` using an explicit
/// stack of (lo, hi) index pairs.
fn emit_quicksort(a: &mut Asm, base_reg: duet_cpu::isa::Reg, n: u64, stack_base: u64) {
    let sp = regs::S[4];
    let (lo, hi) = (regs::S[5], regs::S[6]);
    let (i, j) = (regs::T[0], regs::T[1]);
    let (pivot, tmp, addr, tmp2) = (regs::T[2], regs::T[3], regs::T[4], regs::T[5]);

    // push(0, n-1)
    a.li(sp, stack_base as i64);
    a.li(tmp, 0);
    a.sd(tmp, sp, 0);
    a.li(tmp, (n - 1) as i64);
    a.sd(tmp, sp, 8);
    a.addi(sp, sp, 16);
    a.label("qs_loop");
    a.li(tmp, stack_base as i64);
    a.bgeu(tmp, sp, "qs_done");
    // pop
    a.addi(sp, sp, -16);
    a.ld(lo, sp, 0);
    a.ld(hi, sp, 8);
    a.bgeu(lo, hi, "qs_loop");
    // pivot = a[hi]
    a.slli(addr, hi, 2);
    a.add(addr, addr, base_reg);
    a.lwu(pivot, addr, 0);
    // i = lo - 1 (use lo as running i+1 boundary: i here = store index)
    a.mv(i, lo);
    a.mv(j, lo);
    a.label("qs_part");
    a.bgeu(j, hi, "qs_part_done");
    a.slli(addr, j, 2);
    a.add(addr, addr, base_reg);
    a.lwu(tmp, addr, 0);
    a.bltu(pivot, tmp, "qs_next");
    // swap a[i], a[j]
    a.slli(tmp2, i, 2);
    a.add(tmp2, tmp2, base_reg);
    a.lwu(regs::T[6], tmp2, 0);
    a.sw(tmp, tmp2, 0);
    a.sw(regs::T[6], addr, 0);
    a.addi(i, i, 1);
    a.label("qs_next");
    a.addi(j, j, 1);
    a.j("qs_part");
    a.label("qs_part_done");
    // swap a[i], a[hi]
    a.slli(tmp2, i, 2);
    a.add(tmp2, tmp2, base_reg);
    a.lwu(tmp, tmp2, 0);
    a.slli(addr, hi, 2);
    a.add(addr, addr, base_reg);
    a.lwu(regs::T[6], addr, 0);
    a.sw(regs::T[6], tmp2, 0);
    a.sw(tmp, addr, 0);
    // push (lo, i-1) if i > lo
    a.bgeu(lo, i, "qs_skip_left");
    a.sd(lo, sp, 0);
    a.addi(tmp, i, -1);
    a.sd(tmp, sp, 8);
    a.addi(sp, sp, 16);
    a.label("qs_skip_left");
    // push (i+1, hi) if i+1 < hi
    a.addi(tmp, i, 1);
    a.bgeu(tmp, hi, "qs_skip_right");
    a.sd(tmp, sp, 0);
    a.sd(hi, sp, 8);
    a.addi(sp, sp, 16);
    a.label("qs_skip_right");
    a.j("qs_loop");
    a.label("qs_done");
}

/// Runs the sort benchmark: `n` u32 elements sorted in `slice`-element
/// accelerator passes plus a CPU merge (or quicksort for the baseline).
pub fn run(variant: BenchVariant, slice: u64, n: u64, seed: u64) -> AppResult {
    assert!(
        n.is_multiple_of(slice),
        "n must be a multiple of the slice size"
    );
    let k = n / slice;
    assert!((1..=8).contains(&k), "merge fan-in limited to 8 slices");
    let layout = SortLayout::new(n);
    let mut rng = SimRng::new(seed);
    let input: Vec<u32> = (0..n).map(|_| rng.next_u64() as u32).collect();
    let mut expected = input.clone();
    expected.sort_unstable();

    let mhz = sort_mhz(slice);
    let mut sys = System::new(variant.system_config(1, 2, mhz)).expect("valid config");
    for (i, &v) in input.iter().enumerate() {
        sys.poke_bytes(layout.input + (i as u64) * 4, &v.to_le_bytes());
    }

    let out_region = match variant {
        BenchVariant::ProcOnly => layout.input, // in-place quicksort
        _ => {
            if k == 1 {
                layout.slices
            } else {
                layout.out
            }
        }
    };

    let prog = match variant {
        BenchVariant::ProcOnly => {
            let mut a = Asm::new();
            a.label("main");
            a.li(regs::S[0], layout.input as i64);
            emit_quicksort(&mut a, regs::S[0], n, layout.stack);
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
        _ => {
            let base = sys.config().mmio_base;
            sys.set_reg_mode(0, RegMode::FpgaBound); // slice kick
            sys.set_reg_mode(1, RegMode::CpuBound); // done tokens
            sys.set_reg_mode(2, RegMode::ShadowPlain); // src base
            sys.set_reg_mode(3, RegMode::ShadowPlain); // dst base
            sys.attach_accelerator(Box::new(SortAccel::new(variant.push_mode(), slice)));
            let mut a = Asm::new();
            a.label("main");
            let (cmd, done) = (regs::S[0], regs::S[1]);
            a.li(cmd, base as i64);
            a.li(done, (base + 8) as i64);
            // Parameters.
            a.li(regs::T[0], (base + 16) as i64);
            a.li(regs::T[1], layout.input as i64);
            a.sd(regs::T[1], regs::T[0], 0);
            a.li(regs::T[0], (base + 24) as i64);
            a.li(regs::T[1], layout.slices as i64);
            a.sd(regs::T[1], regs::T[0], 0);
            // Kick all slices (the FPGA-bound FIFO pipelines them).
            a.li(regs::S[2], 0);
            a.label("kick");
            a.sd(regs::S[2], cmd, 0);
            a.addi(regs::S[2], regs::S[2], 1);
            a.li(regs::T[2], k as i64);
            a.blt(regs::S[2], regs::T[2], "kick");
            // Await all done tokens.
            a.li(regs::S[2], 0);
            a.label("wait");
            a.ld(regs::T[0], done, 0);
            a.addi(regs::S[2], regs::S[2], 1);
            a.li(regs::T[2], k as i64);
            a.blt(regs::S[2], regs::T[2], "wait");
            if k > 1 {
                // k-way merge of the sorted slices into `out`.
                // Head index of slice s lives in memory at stack + s*8.
                let heads = layout.stack;
                a.li(regs::T[0], heads as i64);
                a.li(regs::T[1], 0);
                a.label("mz");
                a.sd(duet_cpu::isa::Reg::ZERO, regs::T[0], 0);
                a.addi(regs::T[0], regs::T[0], 8);
                a.addi(regs::T[1], regs::T[1], 1);
                a.li(regs::T[2], k as i64);
                a.blt(regs::T[1], regs::T[2], "mz");
                let (outp, cnt) = (regs::S[3], regs::S[4]);
                a.li(outp, layout.out as i64);
                a.li(cnt, 0);
                a.label("merge");
                // Scan the k heads for the minimum.
                let (best_v, best_s, s) = (regs::S[5], regs::S[6], regs::S[7]);
                a.li(best_v, i64::MAX);
                a.li(best_s, -1);
                a.li(s, 0);
                a.label("scan");
                // idx = heads[s]
                a.slli(regs::T[0], s, 3);
                a.li(regs::T[1], heads as i64);
                a.add(regs::T[1], regs::T[1], regs::T[0]);
                a.ld(regs::T[2], regs::T[1], 0);
                a.li(regs::T[3], slice as i64);
                a.bgeu(regs::T[2], regs::T[3], "scan_next"); // slice drained
                                                             // v = slices[s*slice + idx]
                a.li(regs::T[4], slice as i64);
                a.mul(regs::T[5], s, regs::T[4]);
                a.add(regs::T[5], regs::T[5], regs::T[2]);
                a.slli(regs::T[5], regs::T[5], 2);
                a.li(regs::T[6], layout.slices as i64);
                a.add(regs::T[5], regs::T[5], regs::T[6]);
                a.lwu(regs::T[4], regs::T[5], 0);
                a.bgeu(regs::T[4], best_v, "scan_next");
                a.mv(best_v, regs::T[4]);
                a.mv(best_s, s);
                a.label("scan_next");
                a.addi(s, s, 1);
                a.li(regs::T[0], k as i64);
                a.blt(s, regs::T[0], "scan");
                // Emit best_v; bump heads[best_s].
                a.sw(best_v, outp, 0);
                a.addi(outp, outp, 4);
                a.slli(regs::T[0], best_s, 3);
                a.li(regs::T[1], heads as i64);
                a.add(regs::T[1], regs::T[1], regs::T[0]);
                a.ld(regs::T[2], regs::T[1], 0);
                a.addi(regs::T[2], regs::T[2], 1);
                a.sd(regs::T[2], regs::T[1], 0);
                a.addi(cnt, cnt, 1);
                a.li(regs::T[3], n as i64);
                a.blt(cnt, regs::T[3], "merge");
            }
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
    };
    sys.load_program(0, Arc::new(prog), "main");
    if variant == BenchVariant::ProcOnly {
        sys.warm_shared(layout.input, n * 4, 0);
    }
    let runtime = sys
        .run_until_halt(Time::from_us(400_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(500_000))
        .unwrap_or_else(|e| panic!("{e}"));

    let correct = (0..n).all(|i| {
        let got = sys.peek_u32(out_region + i * 4);
        got == expected[i as usize]
    });
    AppResult {
        name: format!("sort/{slice}"),
        variant,
        processors: 1,
        memory_hubs: 2,
        fpga_mhz: mhz,
        runtime,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quicksort_baseline_sorts() {
        let r = run(BenchVariant::ProcOnly, 32, 64, 3);
        assert!(r.correct, "quicksort produced an unsorted array");
    }

    #[test]
    fn accelerated_sort_single_slice() {
        let r = run(BenchVariant::Duet, 32, 32, 4);
        assert!(r.correct);
    }

    #[test]
    fn accelerated_sort_with_merge() {
        let r = run(BenchVariant::Duet, 32, 128, 9);
        assert!(r.correct, "slice sort + merge mismatch");
    }

    #[test]
    fn duet_beats_fpsoc_and_baseline() {
        let base = run(BenchVariant::ProcOnly, 64, 128, 6);
        let duet = run(BenchVariant::Duet, 64, 128, 6);
        let fpsoc = run(BenchVariant::Fpsoc, 64, 128, 6);
        assert!(base.correct && duet.correct && fpsoc.correct);
        assert!(
            duet.runtime < fpsoc.runtime,
            "duet {} vs fpsoc {}",
            duet.runtime,
            fpsoc.runtime
        );
        assert!(
            duet.speedup_over(&base) > 1.0,
            "sort speedup {:.2}",
            duet.speedup_over(&base)
        );
    }
}
