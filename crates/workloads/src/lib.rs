#![warn(missing_docs)]
//! # duet-workloads
//!
//! The benchmarks of the paper's evaluation (Sec. V): the synthetic
//! CPU↔eFPGA communication microbenchmarks (Figs. 9–11) and the seven
//! application benchmarks of Fig. 12, each with a processor-only IR
//! baseline, a soft-accelerator design, and a Duet/FPSoC driver program.

pub mod barnes_hut;
pub mod bfs;
pub mod common;
pub mod dijkstra;
pub mod locks;
pub mod pdes;
pub mod popcount;
pub mod sort;
pub mod synthetic;
pub mod tangent;

pub use common::{AppResult, BenchVariant};
pub use popcount::POPCOUNT_MHZ;
pub use synthetic::{
    measure_bandwidth, measure_contention, measure_latency, measure_latency_traced, BandwidthPoint,
    ContentionPoint, LatencyPoint, Mechanism, Scratchpad,
};
pub use tangent::TANGENT_MHZ;
