//! **Tangent** (P1M0, fine-grained acceleration; Sec. V-D).
//!
//! "A floating-point Tangent accelerator is implemented with Catapult HLS
//! using a piece-wise linear approximation algorithm with a maximum error
//! rate of 0.3% compared to the C math library (libm). An FPGA-bound FIFO
//! is used to pass the argument to the accelerator and invoke it. Results
//! are returned through an CPU-bound FIFO."
//!
//! The processor-only baseline is a faithful software `tan`: argument
//! reduction modulo π/2 followed by sine/cosine Taylor series and a divide
//! — the work profile of a libm implementation on an in-order core.

use std::collections::VecDeque;
use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};

/// Accelerator clock from Table II.
pub const TANGENT_MHZ: f64 = 282.0;

/// Pipeline depth of the HLS design (slow cycles from argument to result).
const PIPE_DEPTH: usize = 6;

/// Piece-wise linear tangent on `[0, π/4]` with 256 segments — the same
/// approximation structure as the paper's accelerator (≈0.3 % max error).
pub fn pwl_tan(x: f64) -> f64 {
    // Argument reduction: x = k·(π/2) + r, r ∈ [-π/4, π/4).
    let k = (x * std::f64::consts::FRAC_2_PI).round();
    let r = x - k * std::f64::consts::FRAC_PI_2;
    let (mag, neg) = (r.abs(), r < 0.0);
    // PWL evaluation with quantized slopes (models the BRAM table).
    const SEGS: usize = 256;
    let step = std::f64::consts::FRAC_PI_4 / SEGS as f64;
    let i = ((mag / step) as usize).min(SEGS - 1);
    let x0 = i as f64 * step;
    let (y0, y1) = ((x0).tan(), (x0 + step).tan());
    // Quantize table entries to 16 fractional bits (BRAM width).
    let q = |v: f64| (v * 65536.0).round() / 65536.0;
    let t = q(y0) + (mag - x0) / step * (q(y1) - q(y0));
    let t = if neg { -t } else { t };
    if (k as i64) % 2 == 0 {
        t
    } else {
        -1.0 / t
    }
}

/// The tangent accelerator: FPGA-bound argument FIFO in, CPU-bound result
/// FIFO out, initiation interval 1 with a 6-cycle pipeline.
pub struct TangentAccel {
    regs: FabricRegFile,
    pipe: VecDeque<(usize, u64)>,
    ticks: usize,
}

impl TangentAccel {
    /// Creates the design.
    pub fn new(push_mode: bool) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(1);
        TangentAccel {
            regs,
            pipe: VecDeque::new(),
            ticks: 0,
        }
    }
}

impl SoftAccelerator for TangentAccel {
    fn name(&self) -> &str {
        "tangent"
    }

    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.pipe.pack(w);
        self.ticks.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.pipe = Pack::unpack(r)?;
        self.ticks = Pack::unpack(r)?;
        Ok(())
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.ticks += 1;
        self.regs.tick(now, &mut ports.regs);
        if let Some(bits) = self.regs.pop_write(0) {
            let y = pwl_tan(f64::from_bits(bits));
            self.pipe.push_back((self.ticks + PIPE_DEPTH, y.to_bits()));
        }
        while self
            .pipe
            .front()
            .is_some_and(|(ready, _)| *ready <= self.ticks)
        {
            let (_, bits) = self.pipe.pop_front().unwrap();
            self.regs.push_result(1, bits);
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (tangent: 282 MHz, norm. area 0.47,
        // CLB 0.84, BRAM 0).
        NetlistSummary {
            name: "tangent",
            luts: 1660,
            ffs: 2324,
            bram_kbits: 0,
            mults: 2,
            logic_levels: 2,
        }
    }
}

/// Emits the software `tan` subroutine: input f64 bits in `a0`, result in
/// `a0`. Uses T registers and `S[6..7]`; no stack.
fn emit_tan_soft(a: &mut Asm) {
    let x = regs::A[0];
    let (k, r, r2) = (regs::T[0], regs::T[1], regs::T[2]);
    let (acc, term, tmp) = (regs::T[3], regs::T[4], regs::T[5]);
    let (sin, cos) = (regs::S[6], regs::S[7]);
    let kint = regs::T[6];

    a.label("tan_soft");
    // k = round(x * 2/pi)  (inputs are positive; round = trunc(x+0.5))
    a.lfd(tmp, std::f64::consts::FRAC_2_PI);
    a.fmul(k, x, tmp);
    a.lfd(tmp, 0.5);
    a.fadd(k, k, tmp);
    a.f2i(kint, k);
    a.i2f(k, kint);
    // r = x - k*pi/2 (split-constant reduction for accuracy)
    a.lfd(tmp, 1.5707963267341256);
    a.fmul(tmp, k, tmp);
    a.fsub(r, x, tmp);
    a.lfd(tmp, 6.077100506506192e-11);
    a.fmul(tmp, k, tmp);
    a.fsub(r, r, tmp);
    // r2 = r*r
    a.fmul(r2, r, r);
    // sin(r) via Horner: r * (1 + r2*(-1/6 + r2*(1/120 + r2*(-1/5040 +
    // r2*(1/362880 - r2/39916800)))))
    a.lfd(acc, -1.0 / 39_916_800.0);
    for c in [
        1.0 / 362_880.0,
        -1.0 / 5_040.0,
        1.0 / 120.0,
        -1.0 / 6.0,
        1.0,
    ] {
        a.fmul(acc, acc, r2);
        a.lfd(term, c);
        a.fadd(acc, acc, term);
    }
    a.fmul(sin, acc, r);
    // cos(r): 1 + r2*(-1/2 + r2*(1/24 + r2*(-1/720 + r2*(1/40320 -
    // r2/3628800))))
    a.lfd(acc, -1.0 / 3_628_800.0);
    for c in [1.0 / 40_320.0, -1.0 / 720.0, 1.0 / 24.0, -0.5, 1.0] {
        a.fmul(acc, acc, r2);
        a.lfd(term, c);
        a.fadd(acc, acc, term);
    }
    a.mv(cos, acc);
    // k odd -> tan = -cos/sin; even -> sin/cos.
    a.andi(kint, kint, 1);
    a.bnez(kint, "tan_soft_odd");
    a.fdiv(regs::A[0], sin, cos);
    a.ret();
    a.label("tan_soft_odd");
    a.fdiv(regs::A[0], cos, sin);
    // negate: 0 - v
    a.lfd(tmp, 0.0);
    a.fsub(regs::A[0], tmp, regs::A[0]);
    a.ret();
}

/// Memory layout.
#[derive(Clone, Copy, Debug)]
pub struct TangentLayout {
    /// Input angles (f64 each).
    pub input: u64,
    /// Output results (f64 each).
    pub out: u64,
    /// Count.
    pub n: u64,
}

impl TangentLayout {
    /// Default layout.
    pub fn new(n: u64) -> Self {
        TangentLayout {
            input: 0x1_0000,
            out: 0x2_0000,
            n,
        }
    }
}

/// Generates `n` positive angles, avoiding the poles of `tan`.
pub fn generate(n: u64, seed: u64) -> Vec<f64> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| loop {
            let x = rng.next_f64() * 9.0 + 0.05;
            if f64::tan(x).abs() < 8.0 {
                break x;
            }
        })
        .collect()
}

/// Scores a system built by [`prepare`]: layout, reference angles, and the
/// variant-specific tolerance (exact-ish for the software `tan`, the PWL
/// error bound for the accelerated designs).
pub struct TangentCheck {
    layout: TangentLayout,
    angles: Vec<f64>,
    tol: f64,
}

impl TangentCheck {
    /// Whether every output is within tolerance of the reference `tan`.
    pub fn check(&self, sys: &System) -> bool {
        self.angles.iter().enumerate().all(|(i, &x)| {
            let got = sys.peek_f64(self.layout.out + (i as u64) * 8);
            let want = x.tan();
            (got - want).abs() <= self.tol * want.abs().max(1.0)
        })
    }
}

/// Builds a ready-to-run tangent system without running it — the
/// fault-injectable sibling of [`run`], mirroring
/// [`popcount::prepare`](crate::popcount::prepare). `faults` is folded
/// into the system config before construction.
pub fn prepare(
    variant: BenchVariant,
    n: u64,
    seed: u64,
    faults: duet_system::FaultPlan,
) -> (System, TangentCheck) {
    let layout = TangentLayout::new(n);
    let angles = generate(n, seed);
    let mut cfg = variant.system_config(1, 0, TANGENT_MHZ);
    cfg.faults = faults;
    let mut sys = System::new(cfg).expect("valid config");
    for (i, &x) in angles.iter().enumerate() {
        sys.poke_f64(layout.input + (i as u64) * 8, x);
    }

    let prog = match variant {
        BenchVariant::ProcOnly => {
            let mut a = Asm::new();
            a.label("main");
            let (ibase, obase, i) = (regs::S[0], regs::S[1], regs::S[2]);
            a.li(ibase, layout.input as i64);
            a.li(obase, layout.out as i64);
            a.li(i, 0);
            a.label("loop");
            a.ld(regs::A[0], ibase, 0);
            a.call("tan_soft");
            a.sd(regs::A[0], obase, 0);
            a.addi(ibase, ibase, 8);
            a.addi(obase, obase, 8);
            a.addi(i, i, 1);
            a.li(regs::S[3], n as i64);
            a.blt(i, regs::S[3], "loop");
            a.fence();
            a.halt();
            emit_tan_soft(&mut a);
            a.assemble().unwrap()
        }
        _ => {
            // Software pipelining (Fig. 7 ②): keep `DEPTH` arguments in
            // flight through the FPGA-bound FIFO so the accelerator's
            // pipeline stays busy. With shadow registers the writes ack
            // from the fast domain; with normal registers each write stalls
            // for the full crossing — the source of the Duet/FPSoC gap.
            const DEPTH: u64 = 4;
            let depth = DEPTH.min(n);
            let base = sys.config().mmio_base;
            sys.set_reg_mode(0, RegMode::FpgaBound);
            sys.set_reg_mode(1, RegMode::CpuBound);
            sys.attach_accelerator(Box::new(TangentAccel::new(variant.push_mode())));
            let mut a = Asm::new();
            a.label("main");
            let (ibase, obase, i) = (regs::S[0], regs::S[1], regs::S[2]);
            let (arg, res) = (regs::S[3], regs::S[4]);
            a.li(ibase, layout.input as i64);
            a.li(obase, layout.out as i64);
            a.li(arg, base as i64);
            a.li(res, (base + 8) as i64);
            // Prologue: prime the FIFO with `depth` arguments.
            a.li(i, 0);
            a.label("prime");
            a.ld(regs::T[0], ibase, 0);
            a.sd(regs::T[0], arg, 0);
            a.addi(ibase, ibase, 8);
            a.addi(i, i, 1);
            a.li(regs::T[2], depth as i64);
            a.blt(i, regs::T[2], "prime");
            // Steady state: read result k, write argument k+depth.
            a.li(i, 0);
            a.li(regs::S[5], (n - depth) as i64);
            a.blt(regs::S[5], regs::T[2], "drain_setup");
            a.label("loop");
            a.ld(regs::T[1], res, 0);
            a.sd(regs::T[1], obase, 0);
            a.addi(obase, obase, 8);
            a.ld(regs::T[0], ibase, 0);
            a.sd(regs::T[0], arg, 0);
            a.addi(ibase, ibase, 8);
            a.addi(i, i, 1);
            a.blt(i, regs::S[5], "loop");
            a.label("drain_setup");
            a.li(i, 0);
            a.li(regs::S[5], depth as i64);
            a.label("drain");
            a.ld(regs::T[1], res, 0);
            a.sd(regs::T[1], obase, 0);
            a.addi(obase, obase, 8);
            a.addi(i, i, 1);
            a.blt(i, regs::S[5], "drain");
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
    };
    sys.load_program(0, Arc::new(prog), "main");
    if variant == BenchVariant::ProcOnly {
        sys.warm_shared(layout.input, n * 8, 0);
    }
    let tol = match variant {
        BenchVariant::ProcOnly => 1e-6,
        _ => 0.005, // the PWL design guarantees 0.3 %
    };
    (
        sys,
        TangentCheck {
            layout,
            angles,
            tol,
        },
    )
}

/// Runs the tangent benchmark.
pub fn run(variant: BenchVariant, n: u64, seed: u64) -> AppResult {
    let (mut sys, scorer) = prepare(variant, n, seed, duet_system::FaultPlan::empty());
    let runtime = sys
        .run_until_halt(Time::from_us(200_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(400_000))
        .unwrap_or_else(|e| panic!("{e}"));
    AppResult {
        name: "tangent".into(),
        variant,
        processors: 1,
        memory_hubs: 0,
        fpga_mhz: TANGENT_MHZ,
        runtime,
        correct: scorer.check(&sys),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pwl_tan_within_paper_error_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..2000 {
            let x = rng.next_f64() * 9.0 + 0.05;
            let want = x.tan();
            if want.abs() > 8.0 {
                continue; // poles excluded, as in the workload
            }
            let got = pwl_tan(x);
            let rel = (got - want).abs() / want.abs().max(1.0);
            assert!(rel < 0.003, "pwl_tan({x}) = {got}, want {want}, rel {rel}");
        }
    }

    #[test]
    fn software_tan_is_accurate() {
        let r = run(BenchVariant::ProcOnly, 4, 11);
        assert!(r.correct, "software tan out of tolerance");
    }

    #[test]
    fn accelerated_variants_are_correct_and_duet_fastest() {
        let base = run(BenchVariant::ProcOnly, 12, 5);
        let duet = run(BenchVariant::Duet, 12, 5);
        let fpsoc = run(BenchVariant::Fpsoc, 12, 5);
        assert!(base.correct && duet.correct && fpsoc.correct);
        assert!(
            duet.runtime < fpsoc.runtime,
            "duet {} vs fpsoc {}",
            duet.runtime,
            fpsoc.runtime
        );
        assert!(
            duet.speedup_over(&base) > 1.0,
            "tangent Duet speedup {:.2}",
            duet.speedup_over(&base)
        );
    }
}
