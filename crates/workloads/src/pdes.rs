//! **PDES** (P4/P8/P16 M1, hardware augmentation; Sec. III-B2 and V-D).
//!
//! Parallel discrete-event simulation of a digital circuit. "A
//! non-speculative, hardware task scheduler is designed in Verilog ...
//! Processors schedule new events by pushing memory pointers to the events
//! into a FPGA-bound FIFO, after which the task scheduler fetches the event
//! data from shared memory and adds the pointer into the proper event
//! queue. Once certain events are ready to be processed, the task scheduler
//! pushes the pointers into an CPU-bound FIFO ... The processor-only
//! baseline uses MCS locks to arbitrate accesses to the shared event queue,
//! and the lock contention can be severe as the number of cores increases."
//! (The baseline below uses the same MCS locks.)
//!
//! The simulated circuit is a layered feed-forward NAND network: an event
//! `(t, g)` evaluates gate `g` at time `t` and schedules its successors at
//! `t + 10`. Conservative execution: events of time `t` are released only
//! when every earlier event has been processed, so gate inputs are always
//! final when read — both schedulers enforce this, and the final output
//! vector is deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};
use crate::locks::{mcs_acquire, mcs_release};

/// Accelerator clock from Table II.
pub const PDES_MHZ: f64 = 126.0;

/// Register map of the scheduler widget.
pub mod s_reg {
    /// FPGA-bound: pointer to a new event record.
    pub const ENQ: usize = 0;
    /// Token FIFO: one token per released event.
    pub const TOKEN: usize = 1;
    /// CPU-bound: released events, packed `time << 32 | gate`.
    pub const DATA: usize = 2;
    /// FPGA-bound: idle/progress report,
    /// `coreid << 48 | events_scheduled << 24 | events_processed`.
    pub const IDLE: usize = 3;
    /// Plain shadow: 1 when the simulation has terminated.
    pub const DONE: usize = 4;
}

/// A layered feed-forward NAND circuit.
#[derive(Clone, Debug)]
pub struct Circuit {
    /// Gates per layer (layer 0 = primary inputs).
    pub width: u32,
    /// Evaluated layers (1..=layers).
    pub layers: u32,
    /// Per gate: `(in0, in1)` (PIs have `(0, 0)`, unused).
    pub inputs: Vec<(u32, u32)>,
    /// Per gate: successor gate ids.
    pub succs: Vec<Vec<u32>>,
    /// Primary-input values.
    pub pi: Vec<u32>,
}

impl Circuit {
    /// Generates a random circuit.
    pub fn generate(width: u32, layers: u32, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let total = width * (layers + 1);
        let mut inputs = vec![(0u32, 0u32); total as usize];
        let mut succs = vec![Vec::new(); total as usize];
        for l in 1..=layers {
            for k in 0..width {
                let g = l * width + k;
                let a = (l - 1) * width + rng.next_below(u64::from(width)) as u32;
                let b = (l - 1) * width + rng.next_below(u64::from(width)) as u32;
                inputs[g as usize] = (a, b);
                if l < layers {
                    // successors are wired by the consumers of layer l+1.
                }
                succs[a as usize].push(g);
                succs[b as usize].push(g);
            }
        }
        let pi = (0..width).map(|_| (rng.next_u64() & 1) as u32).collect();
        Circuit {
            width,
            layers,
            inputs,
            succs,
            pi,
        }
    }

    /// Number of gates (including PIs).
    pub fn total_gates(&self) -> u32 {
        self.width * (self.layers + 1)
    }

    /// Reference evaluation: final output values of every gate.
    pub fn eval_ref(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.total_gates() as usize];
        out[..self.width as usize].copy_from_slice(&self.pi);
        for l in 1..=self.layers {
            for k in 0..self.width {
                let g = (l * self.width + k) as usize;
                let (a, b) = self.inputs[g];
                out[g] = 1 - (out[a as usize] & out[b as usize]); // NAND
            }
        }
        out
    }
}

/// The hardware task scheduler: a time-ordered event queue in fabric BRAM
/// with conservative release and termination detection. Event records are
/// fetched from shared memory through Memory Hub 0.
pub struct TaskScheduler {
    regs: FabricRegFile,
    /// Event pointers whose record fetch has not been issued yet.
    to_fetch: VecDeque<(u64, u64)>, // (hub id, pointer)
    /// Fetches issued and awaiting their line fill.
    in_flight: Vec<u64>, // hub ids
    next_fetch_id: u64,
    /// Time-ordered queue: time -> gates.
    queue: BTreeMap<u32, VecDeque<u32>>,
    /// Released events not yet acknowledged as processed.
    delivered: u64,
    consumed: Vec<u64>,
    /// Per-core counts of events the core claims to have scheduled.
    scheduled: Vec<u64>,
    /// Enqueue pointers actually received.
    received: u64,
    idle: Vec<bool>,
    cores: usize,
    /// Conservative horizon: events at `cur_time` may run.
    cur_time: u32,
    done: bool,
}

impl TaskScheduler {
    /// Creates the scheduler, pre-seeded with `seeds` events `(time, gate)`
    /// (the initial stimulus).
    pub fn new(push_mode: bool, cores: usize, seeds: &[(u32, u32)]) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_token(s_reg::TOKEN);
        regs.set_queue(s_reg::DATA);
        let mut queue: BTreeMap<u32, VecDeque<u32>> = BTreeMap::new();
        for &(t, g) in seeds {
            queue.entry(t).or_default().push_back(g);
        }
        let cur_time = queue.keys().next().copied().unwrap_or(0);
        TaskScheduler {
            regs,
            to_fetch: VecDeque::new(),
            in_flight: Vec::new(),
            next_fetch_id: 1,
            queue,
            delivered: 0,
            consumed: vec![0; cores],
            scheduled: vec![0; cores],
            received: 0,
            idle: vec![false; cores],
            cores,
            cur_time,
            done: false,
        }
    }

    fn outstanding(&self) -> u64 {
        self.delivered - self.consumed.iter().sum::<u64>()
    }
}

impl SoftAccelerator for TaskScheduler {
    fn name(&self) -> &str {
        "pdes-scheduler"
    }

    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.to_fetch.pack(w);
        self.in_flight.pack(w);
        self.next_fetch_id.pack(w);
        self.queue.pack(w);
        self.delivered.pack(w);
        self.consumed.pack(w);
        self.scheduled.pack(w);
        self.received.pack(w);
        self.idle.pack(w);
        self.cur_time.pack(w);
        self.done.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.to_fetch = Pack::unpack(r)?;
        self.in_flight = Pack::unpack(r)?;
        self.next_fetch_id = Pack::unpack(r)?;
        self.queue = Pack::unpack(r)?;
        self.delivered = Pack::unpack(r)?;
        self.consumed = Pack::unpack(r)?;
        self.scheduled = Pack::unpack(r)?;
        self.received = Pack::unpack(r)?;
        self.idle = Pack::unpack(r)?;
        self.cur_time = Pack::unpack(r)?;
        self.done = Pack::unpack(r)?;
        if self.consumed.len() != self.cores
            || self.scheduled.len() != self.cores
            || self.idle.len() != self.cores
        {
            return Err(duet_sim::SnapError::Corrupt(
                "pdes scheduler core count mismatch",
            ));
        }
        Ok(())
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);

        // New event pointers: fetch their records through the hub. The hub
        // id's low 4 bits carry the record's line offset so the fill can be
        // decoded without extra state.
        while let Some(ptr) = self.regs.pop_write(s_reg::ENQ) {
            self.received += 1;
            let id = (self.next_fetch_id << 4) | (ptr & 0xF);
            self.next_fetch_id += 1;
            self.to_fetch.push_back((id, ptr));
        }
        // Issue one fetch per cycle.
        if let Some(&(id, ptr)) = self.to_fetch.front() {
            if ports.hubs[0].load_line(now, id, ptr & !0xF) {
                self.to_fetch.pop_front();
                self.in_flight.push(id);
            }
        }
        while let Some(resp) = ports.hubs[0].pop_resp(now) {
            if let FpgaRespKind::LoadAck { data } = resp.kind {
                if let Some(pos) = self.in_flight.iter().position(|&fid| fid == resp.id) {
                    self.in_flight.swap_remove(pos);
                    // Record layout: `time << 32 | gate`, little-endian —
                    // the gate id is the low word.
                    let off = (resp.id & 0xF) as usize;
                    let g = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
                    let t = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
                    self.queue.entry(t).or_default().push_back(g);
                }
            }
        }

        // Progress reports. Because these travel the same in-order FIFO as
        // the enqueue writes, a report implies all of that core's earlier
        // enqueues have been received — the termination check below is
        // race-free.
        while let Some(v) = self.regs.pop_write(s_reg::IDLE) {
            let c = (v >> 48) as usize % self.cores;
            self.scheduled[c] = (v >> 24) & 0xFF_FFFF;
            self.consumed[c] = v & 0xFF_FFFF;
            self.idle[c] = true;
        }

        // Conservative release: only events at `cur_time`, and advance the
        // horizon only when everything earlier has drained (no outstanding
        // work, no records still in flight).
        if !self.done {
            let can_advance =
                self.outstanding() == 0 && self.to_fetch.is_empty() && self.in_flight.is_empty();
            let release = self
                .queue
                .get_mut(&self.cur_time)
                .and_then(|q| q.pop_front());
            match release {
                Some(g) => {
                    let packed = (u64::from(self.cur_time) << 32) | u64::from(g);
                    self.regs.push_result(s_reg::DATA, packed);
                    self.regs.push_result(s_reg::TOKEN, 0);
                    self.delivered += 1;
                    if self.queue.get(&self.cur_time).is_some_and(|q| q.is_empty()) {
                        self.queue.remove(&self.cur_time);
                    }
                }
                None => {
                    self.queue.remove(&self.cur_time);
                    if can_advance {
                        if let Some(&t) = self.queue.keys().next() {
                            self.cur_time = t;
                        } else if self.idle.iter().all(|&i| i)
                            && self.scheduled.iter().sum::<u64>() == self.received
                        {
                            self.done = true;
                            self.regs.push_result(s_reg::DONE, 1);
                        }
                    }
                }
            }
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (PDES: 126 MHz, norm. area 2.77, CLB
        // 0.47, BRAM 0.56).
        NetlistSummary {
            name: "pdes",
            luts: 5540,
            ffs: 7756,
            bram_kbits: 4640,
            mults: 0,
            logic_levels: 5,
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.to_fetch.clear();
        self.in_flight.clear();
        self.done = false;
    }
}

/// Memory layout.
#[derive(Clone, Copy, Debug)]
pub struct PdesLayout {
    /// Per gate: in0, in1, succ_off, succ_cnt (4 × u32 = 16 B).
    pub gates: u64,
    /// Successor lists (u32 each).
    pub succs: u64,
    /// Output values (u32 each).
    pub out: u64,
    /// Per-core event-record arenas (8 B records: time u32, gate u32).
    pub arenas: u64,
    /// Arena capacity per core, in records.
    pub arena_cap: u64,
    /// Baseline: bucket queue storage.
    pub buckets: u64,
    /// Baseline: per-bucket head/tail and global control.
    pub ctrl: u64,
}

impl PdesLayout {
    /// Default layout.
    pub fn new() -> Self {
        PdesLayout {
            gates: 0x1_0000,
            succs: 0x3_0000,
            out: 0x5_0000,
            arenas: 0x6_0000,
            arena_cap: 4096,
            buckets: 0x10_0000,
            ctrl: 0x9_0000,
        }
    }
}

impl Default for PdesLayout {
    fn default() -> Self {
        Self::new()
    }
}

const BUCKET_CAP: u64 = 1024;

fn install_circuit(sys: &mut System, layout: &PdesLayout, c: &Circuit) {
    let mut succ_flat: Vec<u32> = Vec::new();
    for (g, s) in c.succs.iter().enumerate() {
        let off = succ_flat.len() as u32;
        let (i0, i1) = c.inputs[g];
        sys.poke_u64(
            layout.gates + (g as u64) * 16,
            u64::from(i0) | (u64::from(i1) << 32),
        );
        sys.poke_u64(
            layout.gates + (g as u64) * 16 + 8,
            u64::from(off) | ((s.len() as u64) << 32),
        );
        succ_flat.extend_from_slice(s);
    }
    for (i, &s) in succ_flat.iter().enumerate() {
        sys.poke_bytes(layout.succs + (i as u64) * 4, &s.to_le_bytes());
    }
    for g in 0..c.total_gates() as u64 {
        let v = if g < u64::from(c.width) {
            c.pi[g as usize]
        } else {
            0
        };
        sys.poke_bytes(layout.out + g * 4, &v.to_le_bytes());
    }
}

/// Emits the event-processing body: event gate in `S[5]`, event time in
/// `S[4]`. Evaluates the NAND and schedules successors by calling
/// `sched_label` with `(time, gate)` packed in `T[6]`... successors are
/// scheduled via `call(sched_label)` with gate in `T[6]` and time in
/// `A[4]`.
fn emit_process_event(a: &mut Asm, layout: &PdesLayout, id: &str, sched_label: &str) {
    let g = regs::S[5];
    let t = regs::S[4];
    // gate meta: in0, in1 at gates + g*16; succ off/cnt at +8.
    a.slli(regs::T[0], g, 4);
    a.li(regs::T[1], layout.gates as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.lwu(regs::T[2], regs::T[0], 0); // in0
    a.lwu(regs::T[3], regs::T[0], 4); // in1
    a.lwu(regs::S[6], regs::T[0], 8); // succ off
    a.lwu(regs::S[7], regs::T[0], 12); // succ cnt
    a.add(regs::S[7], regs::S[7], regs::S[6]); // end
                                               // v = 1 - (out[in0] & out[in1])
    a.slli(regs::T[2], regs::T[2], 2);
    a.li(regs::T[4], layout.out as i64);
    a.add(regs::T[2], regs::T[2], regs::T[4]);
    a.lwu(regs::T[2], regs::T[2], 0);
    a.slli(regs::T[3], regs::T[3], 2);
    a.add(regs::T[3], regs::T[3], regs::T[4]);
    a.lwu(regs::T[3], regs::T[3], 0);
    a.and(regs::T[2], regs::T[2], regs::T[3]);
    a.li(regs::T[3], 1);
    a.sub(regs::T[2], regs::T[3], regs::T[2]);
    // out[g] = v
    a.slli(regs::T[0], g, 2);
    a.add(regs::T[0], regs::T[0], regs::T[4]);
    a.sw(regs::T[2], regs::T[0], 0);
    // schedule successors at t + 10
    a.addi(regs::A[4], t, 10);
    a.label(&format!("succ_{id}"));
    a.bgeu(regs::S[6], regs::S[7], &format!("succ_done_{id}"));
    a.slli(regs::T[0], regs::S[6], 2);
    a.li(regs::T[1], layout.succs as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.lwu(regs::T[6], regs::T[0], 0); // successor gate
    a.call(sched_label);
    a.addi(regs::S[6], regs::S[6], 1);
    a.j(&format!("succ_{id}"));
    a.label(&format!("succ_done_{id}"));
}

/// Runs the PDES benchmark with `p` workers on a `width × layers` circuit.
pub fn run(variant: BenchVariant, p: usize, width: u32, layers: u32, seed: u64) -> AppResult {
    let layout = PdesLayout::new();
    let c = Circuit::generate(width, layers, seed);
    let expected = c.eval_ref();
    let mut sys = System::new(variant.system_config(p, 1, PDES_MHZ)).expect("valid config");
    install_circuit(&mut sys, &layout, &c);

    // Initial stimulus: every layer-1 gate at time 10.
    let seeds: Vec<(u32, u32)> = (0..width).map(|k| (10, width + k)).collect();

    let prog = match variant {
        BenchVariant::ProcOnly => {
            // Bucket queue: bucket b holds gates due at time (b+1)*10.
            // ctrl: [lock, cur_bucket, active, done]; per-bucket head/tail
            // pairs follow at ctrl+64.
            let nbuckets = layers as u64 + 2;
            for b in 0..nbuckets {
                sys.poke_u64(layout.ctrl + 64 + b * 16, 0); // head
                sys.poke_u64(layout.ctrl + 64 + b * 16 + 8, 0); // tail
            }
            // Seed bucket 0 (time 10).
            for (i, &(_, g)) in seeds.iter().enumerate() {
                sys.poke_u64(layout.buckets + (i as u64) * 8, u64::from(g));
            }
            sys.poke_u64(layout.ctrl + 64 + 8, seeds.len() as u64); // tail[0]
            let mut a = Asm::new();
            a.label("main");
            let ctrl = regs::S[0];
            let qnode = regs::A[0];
            a.li(ctrl, layout.ctrl as i64);
            // MCS queue node: ctrl + 0x400 + coreid * 64 (cacheline-spaced).
            a.coreid(regs::T[0]);
            a.slli(regs::T[0], regs::T[0], 6);
            a.li(qnode, (layout.ctrl + 0x400) as i64);
            a.add(qnode, qnode, regs::T[0]);
            a.label("work_loop");
            mcs_acquire(&mut a, "q", ctrl, qnode, regs::T[0], regs::T[1]);
            // b = cur_bucket; if head[b] < tail[b]: pop
            a.ld(regs::T[1], ctrl, 8); // cur bucket
            a.slli(regs::T[2], regs::T[1], 4);
            a.addi(regs::T[2], regs::T[2], 64);
            a.add(regs::T[2], regs::T[2], ctrl); // &head[b]
            a.ld(regs::T[3], regs::T[2], 0); // head
            a.ld(regs::T[4], regs::T[2], 8); // tail
            a.bltu(regs::T[3], regs::T[4], "have_item");
            // Bucket empty: advance only when no one is processing.
            a.ld(regs::T[5], ctrl, 16); // active
            a.bnez(regs::T[5], "retry");
            // Any later bucket non-empty?
            a.li(regs::T[6], layers as i64 + 2);
            a.addi(regs::T[1], regs::T[1], 1);
            a.bgeu(regs::T[1], regs::T[6], "sim_done");
            a.sd(regs::T[1], ctrl, 8); // cur_bucket += 1
            a.j("retry");
            a.label("sim_done");
            a.li(regs::T[0], 1);
            a.sd(regs::T[0], ctrl, 24); // done
            mcs_release(&mut a, "d", ctrl, qnode, regs::T[0], regs::T[1]);
            a.j("finish");
            a.label("retry");
            mcs_release(&mut a, "r", ctrl, qnode, regs::T[0], regs::T[1]);
            a.ld(regs::T[0], ctrl, 24);
            a.bnez(regs::T[0], "finish");
            a.j("work_loop");
            a.label("have_item");
            // g = buckets[b*CAP + head]; head++; active++; t = (b+1)*10
            a.li(regs::T[5], BUCKET_CAP as i64);
            a.mul(regs::T[6], regs::T[1], regs::T[5]);
            a.add(regs::T[6], regs::T[6], regs::T[3]);
            a.slli(regs::T[6], regs::T[6], 3);
            a.li(regs::T[5], layout.buckets as i64);
            a.add(regs::T[6], regs::T[6], regs::T[5]);
            a.ld(regs::S[5], regs::T[6], 0); // gate
            a.addi(regs::T[3], regs::T[3], 1);
            a.sd(regs::T[3], regs::T[2], 0); // head++
            a.ld(regs::T[5], ctrl, 16);
            a.addi(regs::T[5], regs::T[5], 1);
            a.sd(regs::T[5], ctrl, 16); // active++
            a.addi(regs::S[4], regs::T[1], 1);
            a.li(regs::T[5], 10);
            a.mul(regs::S[4], regs::S[4], regs::T[5]); // t = (b+1)*10
            mcs_release(&mut a, "h", ctrl, qnode, regs::T[0], regs::T[1]);
            emit_process_event(&mut a, &layout, "sw", "sched");
            mcs_acquire(&mut a, "dec", ctrl, qnode, regs::T[0], regs::T[1]);
            a.ld(regs::T[5], ctrl, 16);
            a.addi(regs::T[5], regs::T[5], -1);
            a.sd(regs::T[5], ctrl, 16);
            mcs_release(&mut a, "dec", ctrl, qnode, regs::T[0], regs::T[1]);
            a.j("work_loop");
            a.label("finish");
            a.fence();
            a.halt();
            // sched(gate T6, time A4): locked push into bucket t/10 - 1.
            a.label("sched");
            a.mv(regs::A[3], duet_cpu::isa::Reg::RA);
            mcs_acquire(&mut a, "enq", ctrl, qnode, regs::T[0], regs::T[1]);
            a.li(regs::T[0], 10);
            a.div(regs::T[1], regs::A[4], regs::T[0]);
            a.addi(regs::T[1], regs::T[1], -1); // bucket index
            a.slli(regs::T[2], regs::T[1], 4);
            a.addi(regs::T[2], regs::T[2], 64);
            a.add(regs::T[2], regs::T[2], ctrl);
            a.ld(regs::T[4], regs::T[2], 8); // tail
            a.li(regs::T[5], BUCKET_CAP as i64);
            a.mul(regs::T[0], regs::T[1], regs::T[5]);
            a.add(regs::T[0], regs::T[0], regs::T[4]);
            a.slli(regs::T[0], regs::T[0], 3);
            a.li(regs::T[5], layout.buckets as i64);
            a.add(regs::T[0], regs::T[0], regs::T[5]);
            a.sd(regs::T[6], regs::T[0], 0);
            a.addi(regs::T[4], regs::T[4], 1);
            a.sd(regs::T[4], regs::T[2], 8); // tail++
            mcs_release(&mut a, "enq", ctrl, qnode, regs::T[0], regs::T[1]);
            a.mv(duet_cpu::isa::Reg::RA, regs::A[3]);
            a.ret();
            a.assemble().unwrap()
        }
        _ => {
            let base = sys.config().mmio_base;
            sys.set_reg_mode(s_reg::ENQ, RegMode::FpgaBound);
            sys.set_reg_mode(s_reg::TOKEN, RegMode::Token);
            sys.set_reg_mode(s_reg::DATA, RegMode::CpuBound);
            sys.set_reg_mode(s_reg::IDLE, RegMode::FpgaBound);
            sys.set_reg_mode(s_reg::DONE, RegMode::ShadowPlain);
            sys.attach_accelerator(Box::new(TaskScheduler::new(variant.push_mode(), p, &seeds)));
            let mut a = Asm::new();
            a.label("main");
            let (enq_r, tok_r, data_r, idle_r, done_r) =
                (regs::S[0], regs::S[1], regs::S[2], regs::S[3], regs::A[6]);
            a.li(enq_r, (base + 8 * s_reg::ENQ as u64) as i64);
            a.li(tok_r, (base + 8 * s_reg::TOKEN as u64) as i64);
            a.li(data_r, (base + 8 * s_reg::DATA as u64) as i64);
            a.li(idle_r, (base + 8 * s_reg::IDLE as u64) as i64);
            a.li(done_r, (base + 8 * s_reg::DONE as u64) as i64);
            a.li(regs::A[7], 0); // processed count
            a.li(regs::A[1], 0); // scheduled count
            a.coreid(regs::T[0]);
            a.slli(regs::A[5], regs::T[0], 48);
            // A2 = arena write pointer.
            a.coreid(regs::T[0]);
            a.li(regs::T[1], (layout.arena_cap * 8) as i64);
            a.mul(regs::T[0], regs::T[0], regs::T[1]);
            a.li(regs::A[2], layout.arenas as i64);
            a.add(regs::A[2], regs::A[2], regs::T[0]);
            a.label("work_loop");
            a.ld(regs::T[0], tok_r, 0);
            a.beqz(regs::T[0], "no_item");
            a.ld(regs::T[1], data_r, 0); // packed time<<32|gate
            a.srli(regs::S[4], regs::T[1], 32);
            a.li(regs::T[2], 0xFFFF_FFFF);
            a.and(regs::S[5], regs::T[1], regs::T[2]);
            emit_process_event(&mut a, &layout, "hw", "sched");
            a.addi(regs::A[7], regs::A[7], 1);
            a.j("work_loop");
            a.label("no_item");
            // idle report: coreid<<48 | scheduled<<24 | consumed
            a.slli(regs::T[1], regs::A[1], 24);
            a.or(regs::T[1], regs::T[1], regs::A[7]);
            a.or(regs::T[1], regs::T[1], regs::A[5]);
            a.sd(regs::T[1], idle_r, 0);
            a.ld(regs::T[2], done_r, 0);
            a.beqz(regs::T[2], "work_loop");
            a.fence();
            a.halt();
            // sched(gate T6, time A4): write the record, push its pointer.
            a.label("sched");
            a.slli(regs::T[0], regs::A[4], 32);
            a.or(regs::T[0], regs::T[0], regs::T[6]);
            a.sd(regs::T[0], regs::A[2], 0);
            a.fence(); // record globally visible before the pointer
            a.sd(regs::A[2], enq_r, 0);
            a.addi(regs::A[2], regs::A[2], 8);
            a.addi(regs::A[1], regs::A[1], 1);
            a.ret();
            a.assemble().unwrap()
        }
    };
    let prog = Arc::new(prog);
    for core in 0..p {
        sys.load_program(core, prog.clone(), "main");
    }
    if variant == BenchVariant::ProcOnly {
        for core in 0..p {
            sys.warm_shared(layout.gates, u64::from(c.total_gates()) * 16, core);
        }
    }
    let runtime = sys
        .run_until_halt(Time::from_us(60_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(61_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let correct = (0..c.total_gates() as u64)
        .all(|g| sys.peek_u32(layout.out + g * 4) == expected[g as usize]);
    AppResult {
        name: format!("pdes/{p}"),
        variant,
        processors: p,
        memory_hubs: 1,
        fpga_mhz: PDES_MHZ,
        runtime,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_eval_is_nand_network() {
        let c = Circuit::generate(4, 3, 1);
        let out = c.eval_ref();
        for l in 1..=3u32 {
            for k in 0..4 {
                let g = (l * 4 + k) as usize;
                let (a, b) = c.inputs[g];
                assert_eq!(out[g], 1 - (out[a as usize] & out[b as usize]));
            }
        }
    }

    #[test]
    fn baseline_single_core_matches_reference() {
        let r = run(BenchVariant::ProcOnly, 1, 4, 3, 2);
        assert!(r.correct);
    }

    #[test]
    fn baseline_multicore_matches_reference() {
        let r = run(BenchVariant::ProcOnly, 3, 4, 4, 2);
        assert!(r.correct, "conservative ordering violated in baseline");
    }

    #[test]
    fn hardware_scheduler_matches_reference() {
        let r = run(BenchVariant::Duet, 2, 4, 3, 2);
        assert!(r.correct, "hardware scheduler mis-ordered events");
    }

    #[test]
    fn hardware_scheduler_scales_better_than_locks() {
        let base = run(BenchVariant::ProcOnly, 4, 6, 4, 7);
        let duet = run(BenchVariant::Duet, 4, 6, 4, 7);
        assert!(base.correct && duet.correct);
        assert!(
            duet.runtime < base.runtime,
            "scheduler ({}) must beat MCS-locked baseline ({})",
            duet.runtime,
            base.runtime
        );
    }
}
