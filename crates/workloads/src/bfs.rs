//! **BFS** (P4/P8/P16 M0, hardware augmentation; Sec. V-D).
//!
//! "We implement multiple hardware, lock-free queues in Verilog to
//! alleviate the synchronization overhead in parallel Breadth-First
//! Search. ... the processor-only baseline suffers from synchronization
//! bottlenecks."
//!
//! The accelerated version uses an eFPGA-emulated work queue exposed
//! through shadow registers: an FPGA-bound enqueue FIFO, a CPU-bound
//! dequeue FIFO paired with a **token FIFO** (the paper's non-blocking
//! `try_join` mechanism) so workers never block on an empty queue, and a
//! distributed termination protocol in the widget. Distance updates stay
//! on the processors with atomic-min — the widget is application-agnostic
//! queue hardware, exactly the "hardware augmentation" paradigm.
//!
//! Modelling note (documented substitution): the paper's BFS runs in
//! barrier-synchronized level steps with two queues; we use the
//! monotone-relaxation (asynchronous) formulation with a single queue,
//! which computes identical distances for unit weights while exercising
//! the same queue hardware and the same lock-contention bottleneck in the
//! baseline.

use std::collections::VecDeque;
use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};
use crate::locks::{mcs_acquire, mcs_release};

/// Accelerator clock from Table II.
pub const BFS_MHZ: f64 = 208.0;

/// In-memory "unreached" marker. Positive in two's complement because the
/// relaxation uses `amomin` (signed, like RISC-V `amomin.w`); every real
/// distance is far below it.
pub const MEM_INF: u32 = 0x3FFF_FFFF;

/// Register map of the queue widget.
pub mod q_reg {
    /// FPGA-bound: enqueue a node id.
    pub const ENQ: usize = 0;
    /// Token FIFO: one token per available item (non-blocking try-join).
    pub const TOKEN: usize = 1;
    /// CPU-bound: item values (read only after winning a token).
    pub const DATA: usize = 2;
    /// FPGA-bound: idle report,
    /// `coreid << 48 | items_enqueued << 24 | items_consumed`.
    pub const IDLE: usize = 3;
    /// Plain shadow: 1 when the traversal has terminated.
    pub const DONE: usize = 4;
}

/// An unweighted digraph in CSR form.
#[derive(Clone, Debug)]
pub struct BfsGraph {
    /// Per-node `(first_edge, degree)`.
    pub offsets: Vec<(u32, u32)>,
    /// Edge destinations.
    pub dests: Vec<u32>,
}

impl BfsGraph {
    /// Random connected digraph.
    pub fn generate(v: u32, avg_deg: u32, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); v as usize];
        for u in 0..v {
            adj[u as usize].push((u + 1) % v);
        }
        for _ in 0..v * avg_deg.saturating_sub(1) {
            let a = rng.next_below(u64::from(v)) as u32;
            let b = rng.next_below(u64::from(v)) as u32;
            if a != b {
                adj[a as usize].push(b);
            }
        }
        let mut offsets = Vec::new();
        let mut dests = Vec::new();
        for l in &adj {
            offsets.push((dests.len() as u32, l.len() as u32));
            dests.extend_from_slice(l);
        }
        BfsGraph { offsets, dests }
    }

    /// Reference BFS distances from node 0.
    pub fn bfs_ref(&self) -> Vec<u32> {
        let v = self.offsets.len();
        let mut dist = vec![u32::MAX; v];
        let mut q = VecDeque::new();
        dist[0] = 0;
        q.push_back(0u32);
        while let Some(u) = q.pop_front() {
            let (off, deg) = self.offsets[u as usize];
            for e in off..off + deg {
                let w = self.dests[e as usize];
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[u as usize] + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }
}

/// The lock-free work-queue widget with distributed termination detection.
pub struct FrontierQueues {
    regs: FabricRegFile,
    queue: VecDeque<u64>,
    delivered: u64,
    consumed: Vec<u64>,
    /// Per-core counts of enqueues the core claims to have issued.
    enqueued: Vec<u64>,
    /// Enqueues actually received.
    received: u64,
    idle: Vec<bool>,
    cores: usize,
    done: bool,
}

impl FrontierQueues {
    /// Creates the widget for `cores` workers, with the source node
    /// pre-seeded.
    pub fn new(push_mode: bool, cores: usize, seed_node: u64) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_token(q_reg::TOKEN);
        regs.set_queue(q_reg::DATA);
        let mut queue = VecDeque::new();
        queue.push_back(seed_node);
        FrontierQueues {
            regs,
            queue,
            delivered: 0,
            consumed: vec![0; cores],
            enqueued: vec![0; cores],
            received: 0,
            idle: vec![false; cores],
            cores,
            done: false,
        }
    }
}

impl SoftAccelerator for FrontierQueues {
    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.queue.pack(w);
        self.delivered.pack(w);
        self.consumed.pack(w);
        self.enqueued.pack(w);
        self.received.pack(w);
        self.idle.pack(w);
        self.done.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.queue = Pack::unpack(r)?;
        self.delivered = Pack::unpack(r)?;
        self.consumed = Pack::unpack(r)?;
        self.enqueued = Pack::unpack(r)?;
        self.received = Pack::unpack(r)?;
        self.idle = Pack::unpack(r)?;
        self.done = Pack::unpack(r)?;
        if self.consumed.len() != self.cores || self.idle.len() != self.cores {
            return Err(duet_sim::SnapError::Corrupt(
                "bfs frontier core count mismatch",
            ));
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "bfs-queues"
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);
        // Absorb enqueues and idle reports.
        while let Some(v) = self.regs.pop_write(q_reg::ENQ) {
            self.received += 1;
            self.queue.push_back(v);
        }
        // Idle reports share the in-order FIFO with the enqueues, so a
        // report implies all earlier enqueues from that core have arrived.
        while let Some(v) = self.regs.pop_write(q_reg::IDLE) {
            let c = (v >> 48) as usize % self.cores;
            self.enqueued[c] = (v >> 24) & 0xFF_FFFF;
            self.consumed[c] = v & 0xFF_FFFF;
            self.idle[c] = true;
        }
        // Prime: one item per cycle (data first, then its token, so a won
        // token always finds data).
        if !self.done {
            if let Some(&item) = self.queue.front() {
                self.regs.push_result(q_reg::DATA, item);
                self.regs.push_result(q_reg::TOKEN, 0);
                self.queue.pop_front();
                self.delivered += 1;
            }
        }
        // Termination: queue drained, every delivered item acknowledged as
        // consumed, all workers idle.
        if !self.done
            && self.queue.is_empty()
            && self.consumed.iter().sum::<u64>() == self.delivered
            && self.enqueued.iter().sum::<u64>() == self.received
            && self.idle.iter().all(|&i| i)
        {
            self.done = true;
            self.regs.push_result(q_reg::DONE, 1);
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (BFS: 208 MHz, norm. area 1.24, CLB
        // 0.61, BRAM 0.75).
        NetlistSummary {
            name: "bfs",
            luts: 2780,
            ffs: 3892,
            bram_kbits: 2144,
            mults: 0,
            logic_levels: 3,
        }
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.done = false;
    }
}

/// Memory layout.
#[derive(Clone, Copy, Debug)]
pub struct BfsLayout {
    /// `(off, deg)` packed per node.
    pub offsets: u64,
    /// Edge destinations (u32 each).
    pub dests: u64,
    /// Distances (u32 each).
    pub dist: u64,
    /// Baseline: shared queue storage.
    pub queue: u64,
    /// Baseline: lock + head + tail + active + done (u64 each).
    pub ctrl: u64,
}

impl BfsLayout {
    /// Default layout.
    pub fn new() -> Self {
        BfsLayout {
            offsets: 0x1_0000,
            dests: 0x2_0000,
            dist: 0x4_0000,
            queue: 0x6_0000,
            ctrl: 0x8_0000,
        }
    }
}

impl Default for BfsLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Emits the relaxation of node `u` (in `S[5]`): for each neighbor `w`,
/// `old = amomin(dist[w], dist[u]+1)`; newly-improved nodes are enqueued by
/// jumping to `enq_label` with the node in `T[6]` (which must return to
/// `ret_label`).
fn emit_process_node(a: &mut Asm, layout: &BfsLayout, id: &str, enq_label: &str) {
    let u = regs::S[5];
    let (eidx, eend, ndist) = (regs::S[6], regs::S[7], regs::S[4]);
    // meta
    a.slli(regs::T[0], u, 3);
    a.li(regs::T[1], layout.offsets as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.lwu(eidx, regs::T[0], 0);
    a.lwu(eend, regs::T[0], 4);
    a.add(eend, eend, eidx);
    // ndist = dist[u] + 1
    a.slli(regs::T[0], u, 2);
    a.li(regs::T[1], layout.dist as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.lwu(ndist, regs::T[0], 0);
    a.addi(ndist, ndist, 1);
    a.label(&format!("edges_{id}"));
    a.bgeu(eidx, eend, &format!("edges_done_{id}"));
    // w = dests[eidx]
    a.slli(regs::T[0], eidx, 2);
    a.li(regs::T[1], layout.dests as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.lwu(regs::T[6], regs::T[0], 0);
    // old = amomin(dist[w], ndist)
    a.slli(regs::T[2], regs::T[6], 2);
    a.li(regs::T[3], layout.dist as i64);
    a.add(regs::T[2], regs::T[2], regs::T[3]);
    a.emit(duet_cpu::isa::Inst::Amo {
        op: duet_mem::types::AmoOp::Min,
        width: duet_mem::types::Width::B4,
        rd: regs::T[4],
        base: regs::T[2],
        src: ndist,
        expected: duet_cpu::isa::Reg::ZERO,
    });
    a.bgeu(ndist, regs::T[4], &format!("no_improve_{id}"));
    // Improved: enqueue w (in T6).
    a.call(enq_label);
    a.label(&format!("no_improve_{id}"));
    a.addi(eidx, eidx, 1);
    a.j(&format!("edges_{id}"));
    a.label(&format!("edges_done_{id}"));
}

/// Runs the BFS benchmark with `p` workers.
pub fn run(variant: BenchVariant, p: usize, v: u32, avg_deg: u32, seed: u64) -> AppResult {
    let layout = BfsLayout::new();
    let g = BfsGraph::generate(v, avg_deg, seed);
    let expected = g.bfs_ref();
    let mut sys = System::new(variant.system_config(p, 0, BFS_MHZ)).expect("valid config");
    for (u, &(off, deg)) in g.offsets.iter().enumerate() {
        sys.poke_u64(
            layout.offsets + (u as u64) * 8,
            u64::from(off) | (u64::from(deg) << 32),
        );
    }
    for (e, &d) in g.dests.iter().enumerate() {
        sys.poke_bytes(layout.dests + (e as u64) * 4, &d.to_le_bytes());
    }
    for u in 0..v as u64 {
        let d = if u == 0 { 0u32 } else { MEM_INF };
        sys.poke_bytes(layout.dist + u * 4, &d.to_le_bytes());
    }

    let prog = match variant {
        BenchVariant::ProcOnly => {
            // Shared queue under a spinlock: ctrl = [lock, head, tail,
            // active, done].
            sys.poke_u64(layout.queue, 0); // queue[0] = source node
            sys.poke_u64(layout.ctrl + 16, 1); // tail = 1
            let mut a = Asm::new();
            a.label("main");
            let ctrl = regs::S[0];
            let qnode = regs::A[0];
            a.li(ctrl, layout.ctrl as i64);
            // MCS queue node: ctrl + 0x400 + coreid * 64.
            a.coreid(regs::T[0]);
            a.slli(regs::T[0], regs::T[0], 6);
            a.li(qnode, (layout.ctrl + 0x400) as i64);
            a.add(qnode, qnode, regs::T[0]);
            a.label("work_loop");
            mcs_acquire(&mut a, "q", ctrl, qnode, regs::T[0], regs::T[1]);
            // head < tail ?
            a.ld(regs::T[1], ctrl, 8);
            a.ld(regs::T[2], ctrl, 16);
            a.bltu(regs::T[1], regs::T[2], "have_item");
            // Empty: check termination (active == 0).
            a.ld(regs::T[3], ctrl, 24);
            a.bnez(regs::T[3], "retry");
            a.li(regs::T[4], 1);
            a.sd(regs::T[4], ctrl, 32); // done = 1
            mcs_release(&mut a, "d", ctrl, qnode, regs::T[0], regs::T[1]);
            a.j("finish");
            a.label("retry");
            mcs_release(&mut a, "r", ctrl, qnode, regs::T[0], regs::T[1]);
            a.ld(regs::T[5], ctrl, 32);
            a.bnez(regs::T[5], "finish");
            a.j("work_loop");
            a.label("have_item");
            // u = queue[head++]; active++
            a.li(regs::T[3], layout.queue as i64);
            a.slli(regs::T[4], regs::T[1], 3);
            a.add(regs::T[3], regs::T[3], regs::T[4]);
            a.ld(regs::S[5], regs::T[3], 0);
            a.addi(regs::T[1], regs::T[1], 1);
            a.sd(regs::T[1], ctrl, 8);
            a.ld(regs::T[3], ctrl, 24);
            a.addi(regs::T[3], regs::T[3], 1);
            a.sd(regs::T[3], ctrl, 24);
            mcs_release(&mut a, "h", ctrl, qnode, regs::T[0], regs::T[1]);
            // Process u; enqueues go through `enq` (locked push).
            emit_process_node(&mut a, &layout, "sw", "enq");
            // active--
            mcs_acquire(&mut a, "dec", ctrl, qnode, regs::T[0], regs::T[1]);
            a.ld(regs::T[3], ctrl, 24);
            a.addi(regs::T[3], regs::T[3], -1);
            a.sd(regs::T[3], ctrl, 24);
            mcs_release(&mut a, "dec", ctrl, qnode, regs::T[0], regs::T[1]);
            a.j("work_loop");
            a.label("finish");
            a.fence();
            a.halt();
            // enq(w in T6): locked append. Must preserve S registers and
            // T6; clobbers T0, T1, T2 after saving what matters.
            a.label("enq");
            a.mv(regs::A[2], duet_cpu::isa::Reg::RA);
            mcs_acquire(&mut a, "enq", ctrl, qnode, regs::T[0], regs::T[1]);
            a.ld(regs::T[0], ctrl, 16); // tail
            a.li(regs::T[1], layout.queue as i64);
            a.slli(regs::T[2], regs::T[0], 3);
            a.add(regs::T[1], regs::T[1], regs::T[2]);
            a.sd(regs::T[6], regs::T[1], 0);
            a.addi(regs::T[0], regs::T[0], 1);
            a.sd(regs::T[0], ctrl, 16);
            mcs_release(&mut a, "enq", ctrl, qnode, regs::T[0], regs::T[1]);
            a.mv(duet_cpu::isa::Reg::RA, regs::A[2]);
            a.ret();
            a.assemble().unwrap()
        }
        _ => {
            let base = sys.config().mmio_base;
            sys.set_reg_mode(q_reg::ENQ, RegMode::FpgaBound);
            sys.set_reg_mode(q_reg::TOKEN, RegMode::Token);
            sys.set_reg_mode(q_reg::DATA, RegMode::CpuBound);
            sys.set_reg_mode(q_reg::IDLE, RegMode::FpgaBound);
            sys.set_reg_mode(q_reg::DONE, RegMode::ShadowPlain);
            sys.attach_accelerator(Box::new(FrontierQueues::new(variant.push_mode(), p, 0)));
            let mut a = Asm::new();
            a.label("main");
            let (enq_r, tok_r, data_r, idle_r, done_r) =
                (regs::S[0], regs::S[1], regs::S[2], regs::S[3], regs::A[6]);
            a.li(enq_r, (base + 8 * q_reg::ENQ as u64) as i64);
            a.li(tok_r, (base + 8 * q_reg::TOKEN as u64) as i64);
            a.li(data_r, (base + 8 * q_reg::DATA as u64) as i64);
            a.li(idle_r, (base + 8 * q_reg::IDLE as u64) as i64);
            a.li(done_r, (base + 8 * q_reg::DONE as u64) as i64);
            // A7 = consumed counter, A1 = enqueued counter, A5 = coreid<<48.
            a.li(regs::A[7], 0);
            a.li(regs::A[1], 0);
            a.coreid(regs::T[0]);
            a.slli(regs::A[5], regs::T[0], 48);
            a.label("work_loop");
            a.ld(regs::T[0], tok_r, 0); // try-join
            a.beqz(regs::T[0], "no_item");
            a.ld(regs::S[5], data_r, 0); // guaranteed present
            emit_process_node(&mut a, &layout, "hw", "enq");
            a.addi(regs::A[7], regs::A[7], 1);
            a.j("work_loop");
            a.label("no_item");
            // Report idle: coreid<<48 | enqueued<<24 | consumed; poll DONE.
            a.slli(regs::T[1], regs::A[1], 24);
            a.or(regs::T[1], regs::T[1], regs::A[7]);
            a.or(regs::T[1], regs::T[1], regs::A[5]);
            a.sd(regs::T[1], idle_r, 0);
            a.ld(regs::T[2], done_r, 0);
            a.beqz(regs::T[2], "work_loop");
            a.fence();
            a.halt();
            // enq(w in T6): one shadow-register write.
            a.label("enq");
            a.sd(regs::T[6], enq_r, 0);
            a.addi(regs::A[1], regs::A[1], 1);
            a.ret();
            a.assemble().unwrap()
        }
    };
    let prog = Arc::new(prog);
    for c in 0..p {
        sys.load_program(c, prog.clone(), "main");
    }
    if variant == BenchVariant::ProcOnly {
        for c in 0..p {
            sys.warm_shared(layout.offsets, u64::from(v) * 8, c);
            sys.warm_shared(layout.dests, g.dests.len() as u64 * 4, c);
        }
    }
    let runtime = sys
        .run_until_halt(Time::from_us(30_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(31_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let correct = (0..v as u64).all(|u| sys.peek_u32(layout.dist + u * 4) == expected[u as usize]);
    AppResult {
        name: format!("bfs/{p}"),
        variant,
        processors: p,
        memory_hubs: 0,
        fpga_mhz: BFS_MHZ,
        runtime,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_single_core_correct() {
        let r = run(BenchVariant::ProcOnly, 1, 24, 2, 3);
        assert!(r.correct);
    }

    #[test]
    fn baseline_multicore_correct() {
        let r = run(BenchVariant::ProcOnly, 3, 24, 2, 3);
        assert!(r.correct, "racy distance updates in the locked baseline");
    }

    #[test]
    fn hardware_queues_single_core_correct() {
        let r = run(BenchVariant::Duet, 1, 24, 2, 3);
        assert!(r.correct);
    }

    #[test]
    fn hardware_queues_multicore_correct_and_faster() {
        let base = run(BenchVariant::ProcOnly, 4, 32, 3, 8);
        let duet = run(BenchVariant::Duet, 4, 32, 3, 8);
        assert!(base.correct && duet.correct);
        assert!(
            duet.runtime < base.runtime,
            "hardware queues ({}) must beat the locked baseline ({})",
            duet.runtime,
            base.runtime
        );
    }

    #[test]
    fn fpsoc_queues_correct_but_slower_than_duet() {
        let duet = run(BenchVariant::Duet, 2, 24, 2, 5);
        let fpsoc = run(BenchVariant::Fpsoc, 2, 24, 2, 5);
        assert!(duet.correct && fpsoc.correct);
        assert!(
            duet.runtime < fpsoc.runtime,
            "duet {} vs fpsoc {}",
            duet.runtime,
            fpsoc.runtime
        );
    }
}
