//! The synthetic CPU↔eFPGA communication benchmarks of Sec. V-C.
//!
//! "The eFPGA emulates a simple scratchpad memory and a processor uses
//! different mechanisms to access it": soft registers (normal vs shadowed)
//! and shared memory (eFPGA pull vs CPU pull, through a slow cache vs the
//! Proxy Cache). The drivers here regenerate Fig. 9 (single-transaction
//! round-trip latency with its four-way breakdown), Fig. 10 (single-
//! processor bandwidth vs eFPGA clock), and Fig. 11 (per-processor
//! bandwidth vs number of contending processors).

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_mem::types::Width;
use duet_sim::{LatencyBreakdown, Time};
use duet_system::{System, SystemConfig, Variant};
use duet_trace::TraceConfig;

/// Soft-register assignments of the scratchpad design.
pub mod sp_reg {
    /// Command register (FPGA-bound FIFO on Duet).
    pub const CMD: usize = 0;
    /// Result queue (CPU-bound FIFO on Duet).
    pub const RESULT: usize = 1;
    /// Buffer A base address (plain shadow).
    pub const BUF_A: usize = 2;
    /// Buffer B base address (plain shadow).
    pub const BUF_B: usize = 3;
    /// Synchronization barrier (always a normal register, Sec. II-F).
    pub const BARRIER: usize = 4;
    /// Word count (plain shadow).
    pub const NWORDS: usize = 5;
    /// Echo data port (FPGA-bound FIFO on Duet).
    pub const DATA: usize = 6;
}

/// Scratchpad commands (written to [`sp_reg::CMD`]).
pub mod sp_op {
    /// Load `NWORDS` quad-words from buffer A into the scratchpad, then
    /// store them to buffer B, then release the barrier (the Fig. 10
    /// shared-memory protocol).
    pub const COPY_A_TO_B: u64 = 1;
    /// Load a single line from buffer A, recording its latency; release
    /// the barrier when the fill arrives (Fig. 9 eFPGA pull).
    pub const PULL_LINE: u64 = 2;
    /// Store one quad-word to buffer B so the FPGA-side cache owns that
    /// line in M state; release the barrier (setup for Fig. 9 CPU pull).
    pub const OWN_LINE: u64 = 3;
}

/// Instrumentation shared between the scratchpad and the driver.
#[derive(Clone, Debug, Default)]
pub struct SpEvents {
    /// Slow-domain issue time of the single-line pull.
    pub pull_issue: Option<Time>,
    /// Completion time and attribution of the single-line pull.
    pub pull_done: Option<(Time, LatencyBreakdown)>,
    /// First load issue of the bulk pull phase.
    pub bulk_pull_start: Option<Time>,
    /// Last fill of the bulk pull phase.
    pub bulk_pull_end: Option<Time>,
    /// First store issue of the bulk push phase.
    pub bulk_push_start: Option<Time>,
    /// Last store ack of the bulk push phase.
    pub bulk_push_end: Option<Time>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SpState {
    Idle,
    Pulling { next: u64, fills_left: u64 },
    Pushing { next: u64, acks_left: u64 },
    PullOne,
    OwnLine,
}

impl duet_sim::Pack for SpState {
    fn pack(&self, w: &mut duet_sim::SnapWriter) {
        match self {
            SpState::Idle => 0u8.pack(w),
            SpState::Pulling { next, fills_left } => {
                1u8.pack(w);
                next.pack(w);
                fills_left.pack(w);
            }
            SpState::Pushing { next, acks_left } => {
                2u8.pack(w);
                next.pack(w);
                acks_left.pack(w);
            }
            SpState::PullOne => 3u8.pack(w),
            SpState::OwnLine => 4u8.pack(w),
        }
    }

    fn unpack(r: &mut duet_sim::SnapReader<'_>) -> Result<Self, duet_sim::SnapError> {
        use duet_sim::Pack;
        Ok(match u8::unpack(r)? {
            0 => SpState::Idle,
            1 => SpState::Pulling {
                next: Pack::unpack(r)?,
                fills_left: Pack::unpack(r)?,
            },
            2 => SpState::Pushing {
                next: Pack::unpack(r)?,
                acks_left: Pack::unpack(r)?,
            },
            3 => SpState::PullOne,
            4 => SpState::OwnLine,
            _ => return Err(duet_sim::SnapError::Corrupt("invalid SpState discriminant")),
        })
    }
}

/// The eFPGA-emulated scratchpad of Sec. V-C. One load issue, one store
/// issue, and one register event per eFPGA cycle.
pub struct Scratchpad {
    regs: FabricRegFile,
    /// Scratchpad storage (BRAM-backed in the real design).
    mem: Vec<u64>,
    state: SpState,
    buf_a: u64,
    buf_b: u64,
    nwords: u64,
    events: Rc<RefCell<SpEvents>>,
    id_next: u64,
}

impl Scratchpad {
    /// Creates the scratchpad. `push_mode` must match the system's register
    /// configuration (shadow on Duet, normal on FPSoC).
    pub fn new(push_mode: bool, events: Rc<RefCell<SpEvents>>) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(sp_reg::RESULT);
        regs.set_barrier(sp_reg::BARRIER);
        Scratchpad {
            regs,
            mem: vec![0; 4096],
            state: SpState::Idle,
            buf_a: 0,
            buf_b: 0,
            nwords: 0,
            events,
            id_next: 1,
        }
    }

    fn alloc_id(&mut self) -> u64 {
        let id = self.id_next;
        self.id_next += 1;
        id
    }
}

impl SoftAccelerator for Scratchpad {
    fn name(&self) -> &str {
        "scratchpad"
    }

    // `events` is host-side instrumentation (shared with the measuring
    // harness), not fabric state: it is deliberately not serialized.
    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.mem.pack(w);
        self.state.pack(w);
        self.buf_a.pack(w);
        self.buf_b.pack(w);
        self.nwords.pack(w);
        self.id_next.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.mem = Pack::unpack(r)?;
        self.state = Pack::unpack(r)?;
        self.buf_a = Pack::unpack(r)?;
        self.buf_b = Pack::unpack(r)?;
        self.nwords = Pack::unpack(r)?;
        self.id_next = Pack::unpack(r)?;
        Ok(())
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);

        // Echo port: every DATA write is stored and echoed to RESULT.
        if let Some(v) = self.regs.pop_write(sp_reg::DATA) {
            let idx = (v as usize) % self.mem.len();
            self.mem[idx] = v;
            self.regs.push_result(sp_reg::RESULT, v);
        }

        // Latch plain parameters.
        self.buf_a = self.regs.value(sp_reg::BUF_A);
        self.buf_b = self.regs.value(sp_reg::BUF_B);
        self.nwords = self.regs.value(sp_reg::NWORDS).max(1);

        // Memory responses (at most the FIFO's worth per tick; the design
        // accepts one line fill per cycle as in Sec. V-C).
        if !ports.hubs.is_empty() {
            if let Some(resp) = ports.hubs[0].pop_resp(now) {
                match resp.kind {
                    FpgaRespKind::LoadAck { data } => match self.state {
                        SpState::PullOne => {
                            let _ = data;
                            self.events.borrow_mut().pull_done = Some((now, resp.breakdown));
                            self.regs.release_barrier(sp_reg::BARRIER, 1);
                            self.state = SpState::Idle;
                        }
                        SpState::Pulling { next, fills_left } => {
                            let word0 = u64::from_le_bytes(data[0..8].try_into().unwrap());
                            let word1 = u64::from_le_bytes(data[8..16].try_into().unwrap());
                            let len = self.mem.len();
                            let base = ((resp.id - 1) * 2) as usize % len;
                            self.mem[base] = word0;
                            self.mem[(base + 1) % len] = word1;
                            let fills_left = fills_left - 1;
                            if fills_left == 0 {
                                self.events.borrow_mut().bulk_pull_end = Some(now);
                                self.events.borrow_mut().bulk_push_start = Some(now);
                                self.state = SpState::Pushing {
                                    next: 0,
                                    acks_left: self.nwords,
                                };
                            } else {
                                self.state = SpState::Pulling { next, fills_left };
                            }
                        }
                        _ => {}
                    },
                    FpgaRespKind::StoreAck { .. } => match self.state {
                        SpState::OwnLine => {
                            self.regs.release_barrier(sp_reg::BARRIER, 1);
                            self.state = SpState::Idle;
                        }
                        SpState::Pushing { next, acks_left } => {
                            let acks_left = acks_left - 1;
                            if acks_left == 0 {
                                self.events.borrow_mut().bulk_push_end = Some(now);
                                self.regs.release_barrier(sp_reg::BARRIER, 1);
                                self.state = SpState::Idle;
                            } else {
                                self.state = SpState::Pushing { next, acks_left };
                            }
                        }
                        _ => {}
                    },
                    FpgaRespKind::Inv { .. } => {}
                }
            }
        }

        // Command dispatch.
        if self.state == SpState::Idle {
            if let Some(cmd) = self.regs.pop_write(sp_reg::CMD) {
                match cmd {
                    sp_op::COPY_A_TO_B => {
                        let lines = self.nwords.div_ceil(2);
                        self.events.borrow_mut().bulk_pull_start = Some(now);
                        self.state = SpState::Pulling {
                            next: 0,
                            fills_left: lines,
                        };
                    }
                    sp_op::PULL_LINE => {
                        self.state = SpState::PullOne;
                    }
                    sp_op::OWN_LINE => {
                        self.state = SpState::OwnLine;
                    }
                    _ => {}
                }
            }
        }

        // Issue work: one memory request per cycle.
        if ports.hubs.is_empty() {
            return;
        }
        let hub = &mut ports.hubs[0];
        match self.state {
            SpState::PullOne => {
                let ev = self.events.borrow_mut();
                if ev.pull_issue.is_none() {
                    let id = {
                        drop(ev);
                        self.alloc_id()
                    };
                    if hub.load_line(now, id, self.buf_a & !0xF) {
                        self.events.borrow_mut().pull_issue = Some(now);
                    }
                }
            }
            SpState::OwnLine
                // Issue exactly once: use id parity tracking via mem slot.
                if self.mem[self.mem.len() - 1] == 0 => {
                    let id = self.alloc_id();
                    if hub.store(now, id, self.buf_b, Width::B8, 0xFEED) {
                        self.mem[4095] = 1;
                    }
                }
            SpState::Pulling { next, fills_left } => {
                let lines = self.nwords.div_ceil(2);
                if next < lines {
                    let id = next + 1; // fill handler decodes the index
                    let addr = (self.buf_a & !0xF) + next * 16;
                    if hub.issue(
                        now,
                        duet_fpga::ports::FpgaMemReq {
                            id,
                            op: duet_fpga::ports::FpgaMemOp::LoadLine,
                            addr,
                            wdata: 0,
                            expected: 0,
                            issued_at: now,
                        },
                    ) {
                        self.state = SpState::Pulling {
                            next: next + 1,
                            fills_left,
                        };
                    }
                }
            }
            SpState::Pushing { next, acks_left }
                if next < self.nwords => {
                    let id = 1 << 20 | next;
                    let addr = self.buf_b + next * 8;
                    let value = self.mem[(next as usize) % self.mem.len()];
                    if hub.store(now, id, addr, Width::B8, value) {
                        self.state = SpState::Pushing {
                            next: next + 1,
                            acks_left,
                        };
                    }
                }
            _ => {}
        }

        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        NetlistSummary {
            name: "scratchpad",
            luts: 900,
            ffs: 700,
            bram_kbits: 256,
            mults: 0,
            logic_levels: 4,
        }
    }

    fn reset(&mut self) {
        self.state = SpState::Idle;
        self.mem.fill(0);
    }

    fn is_idle(&self) -> bool {
        // Quiet iff the state machine is parked, the register endpoint has
        // no protocol work, and the two registers `tick` drains with
        // `pop_write` (CMD dispatches, DATA echoes) hold no unconsumed
        // writes. BUF_A/BUF_B/NWORDS are latch-only: their inboxes are
        // never popped and carry no future work.
        self.state == SpState::Idle
            && self.regs.is_quiescent()
            && !self.regs.has_pending_write(sp_reg::CMD)
            && !self.regs.has_pending_write(sp_reg::DATA)
    }
}

/// The communication mechanisms of Sec. V-C.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mechanism {
    /// Non-shadowed soft registers (every access crosses into the fabric).
    NormalReg,
    /// Shadow registers: FPGA-bound write FIFO + CPU-bound read FIFO.
    ShadowReg,
    /// eFPGA loads shared memory through a slow (eFPGA-domain) cache.
    EfpgaPullSlow,
    /// eFPGA loads shared memory through the Proxy Cache.
    EfpgaPullProxy,
    /// CPU loads data owned by a slow FPGA-side cache.
    CpuPullSlow,
    /// CPU loads data owned by the Proxy Cache.
    CpuPullProxy,
}

impl Mechanism {
    /// All mechanisms, in the order Fig. 9 plots them.
    pub const ALL: [Mechanism; 6] = [
        Mechanism::NormalReg,
        Mechanism::ShadowReg,
        Mechanism::EfpgaPullSlow,
        Mechanism::EfpgaPullProxy,
        Mechanism::CpuPullSlow,
        Mechanism::CpuPullProxy,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Mechanism::NormalReg => "normal-reg",
            Mechanism::ShadowReg => "shadow-reg",
            Mechanism::EfpgaPullSlow => "efpga-pull/slow-cache",
            Mechanism::EfpgaPullProxy => "efpga-pull/proxy-cache",
            Mechanism::CpuPullSlow => "cpu-pull/slow-cache",
            Mechanism::CpuPullProxy => "cpu-pull/proxy-cache",
        }
    }

    fn system_config(&self, p: usize, fpga_mhz: f64) -> SystemConfig {
        match self {
            Mechanism::EfpgaPullSlow | Mechanism::CpuPullSlow => {
                // Slow FPGA-side cache, but keep shadow registers so the
                // signaling path is identical — Fig. 9 isolates the cache
                // organization.
                let mut c = SystemConfig::fpsoc(p, 1, fpga_mhz);
                c.variant = Variant::Fpsoc;
                c
            }
            _ => SystemConfig::dolly(p, 1, fpga_mhz),
        }
    }

    fn uses_shadow_regs(&self) -> bool {
        !matches!(self, Mechanism::NormalReg)
    }
}

/// One measured point of Fig. 9.
#[derive(Clone, Debug)]
pub struct LatencyPoint {
    /// The mechanism measured.
    pub mechanism: Mechanism,
    /// eFPGA clock, MHz.
    pub fpga_mhz: f64,
    /// Round-trip latency.
    pub total: Time,
    /// Four-way attribution (NoC / fast cache / slow cache / CDC).
    pub breakdown: LatencyBreakdown,
    /// Per-link occupancy/stall snapshot of the whole component graph at
    /// the end of the measurement (see [`System::link_reports`]).
    pub links: Vec<(String, duet_sim::LinkReport)>,
}

/// Builds a system configured for a mechanism, with the scratchpad
/// attached and registers set up.
fn build_system(mechanism: Mechanism, p: usize, fpga_mhz: f64) -> (System, Rc<RefCell<SpEvents>>) {
    let cfg = mechanism.system_config(p, fpga_mhz);
    let shadow = mechanism.uses_shadow_regs() && cfg.variant == Variant::Duet;
    let mut sys = System::new(cfg).expect("valid config");
    if shadow {
        sys.set_reg_mode(sp_reg::CMD, RegMode::FpgaBound);
        sys.set_reg_mode(sp_reg::RESULT, RegMode::CpuBound);
        sys.set_reg_mode(sp_reg::BUF_A, RegMode::ShadowPlain);
        sys.set_reg_mode(sp_reg::BUF_B, RegMode::ShadowPlain);
        sys.set_reg_mode(sp_reg::NWORDS, RegMode::ShadowPlain);
        sys.set_reg_mode(sp_reg::DATA, RegMode::FpgaBound);
    } else {
        for r in [
            sp_reg::CMD,
            sp_reg::RESULT,
            sp_reg::BUF_A,
            sp_reg::BUF_B,
            sp_reg::NWORDS,
            sp_reg::DATA,
        ] {
            sys.set_reg_mode(r, RegMode::Normal);
        }
    }
    // The barrier is always a normal register (non-bufferable semantics).
    sys.set_reg_mode(sp_reg::BARRIER, RegMode::Normal);
    let events = Rc::new(RefCell::new(SpEvents::default()));
    // Push-mode iff the result FIFO is CPU-bound (shadow).
    let push_mode = shadow;
    sys.attach_accelerator(Box::new(Scratchpad::new(push_mode, events.clone())));
    (sys, events)
}

/// MMIO address of soft register `r`.
fn reg_addr(base: u64, r: usize) -> i64 {
    (base + (r as u64) * 8) as i64
}

/// Measures one Fig. 9 point.
pub fn measure_latency(mechanism: Mechanism, fpga_mhz: f64) -> LatencyPoint {
    measure_latency_traced(mechanism, fpga_mhz, None).0
}

/// Measures one Fig. 9 point, optionally with event tracing enabled.
///
/// When `trace` is `Some`, the run captures a full event trace and the
/// returned string is its Chrome trace-event JSON (loadable in Perfetto) —
/// one track per component, flow arrows following each NoC transaction
/// across hops. The measured latency is bit-identical either way.
pub fn measure_latency_traced(
    mechanism: Mechanism,
    fpga_mhz: f64,
    trace: Option<&TraceConfig>,
) -> (LatencyPoint, Option<String>) {
    let (mut sys, events) = build_system(mechanism, 1, fpga_mhz);
    if let Some(tcfg) = trace {
        sys.enable_tracing(tcfg);
    }
    let base = sys.config().mmio_base;
    let clock = sys.config().clock;
    let deadline = Time::from_us(20_000);
    // Scratch locations for the measured timestamps.
    let t0_addr = 0x9000i64;
    let t1_addr = 0x9008i64;

    let point = match mechanism {
        Mechanism::NormalReg | Mechanism::ShadowReg => {
            // Pre-load the result queue so the read's data is ready (the
            // paper measures access latency, not accelerator compute time).
            let mut a = Asm::new();
            a.label("main");
            a.li(regs::T[0], reg_addr(base, sp_reg::DATA));
            a.li(regs::T[6], reg_addr(base, sp_reg::RESULT));
            // Prime: one write/echo round trip, consumed so queues are warm.
            a.li(regs::T[1], 1);
            a.sd(regs::T[1], regs::T[0], 0);
            a.ld(regs::T[2], regs::T[6], 0);
            // Second prime leaves one value IN the result queue.
            a.li(regs::T[1], 2);
            a.sd(regs::T[1], regs::T[0], 0);
            a.fence();
            // Let the echo land before measuring.
            a.li(regs::T[3], 0);
            a.label("delay");
            a.addi(regs::T[3], regs::T[3], 1);
            a.slti(regs::T[4], regs::T[3], 3000);
            a.bnez(regs::T[4], "delay");
            // Measured: one write + one read.
            a.rdcycle(regs::S[0]);
            a.li(regs::T[1], 3);
            a.sd(regs::T[1], regs::T[0], 0);
            a.ld(regs::T[2], regs::T[6], 0);
            a.rdcycle(regs::S[1]);
            a.li(regs::T[5], t0_addr);
            a.sd(regs::S[0], regs::T[5], 0);
            a.li(regs::T[5], t1_addr);
            a.sd(regs::S[1], regs::T[5], 0);
            a.fence();
            a.halt();
            sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
            sys.run_until_halt(deadline)
                .unwrap_or_else(|e| panic!("{e}"));
            sys.quiesce(deadline + Time::from_us(100))
                .unwrap_or_else(|e| panic!("{e}"));
            let cycles = sys.peek_u64(t1_addr as u64) - sys.peek_u64(t0_addr as u64);
            let total = clock.period().mul(cycles);
            // Register accesses have no memory-transaction breakdown; the
            // whole round trip is attributed by domain analytically: shadow
            // accesses live entirely in the fast domain; normal accesses
            // pay two crossings plus slow-domain handling per access.
            let breakdown = if mechanism == Mechanism::ShadowReg {
                LatencyBreakdown {
                    cache_fast: total,
                    ..Default::default()
                }
            } else {
                let slow = sys.config().fpga_clock().period().mul(4);
                LatencyBreakdown {
                    cache_slow: slow.min(total),
                    cdc: total.saturating_sub(slow),
                    ..Default::default()
                }
            };
            LatencyPoint {
                mechanism,
                fpga_mhz,
                total,
                breakdown,
                links: sys.link_reports(),
            }
        }
        Mechanism::EfpgaPullSlow | Mechanism::EfpgaPullProxy => {
            let buf_a = 0xA000u64;
            let mut a = Asm::new();
            a.label("main");
            // Dirty the line in the CPU's L2 (modified state).
            a.li(regs::T[0], buf_a as i64);
            a.li(regs::T[1], 0x1234_5678);
            a.sd(regs::T[1], regs::T[0], 0);
            a.sd(regs::T[1], regs::T[0], 8);
            a.fence();
            a.li(regs::T[2], reg_addr(base, sp_reg::BUF_A));
            a.sd(regs::T[0], regs::T[2], 0);
            a.li(regs::T[3], sp_op::PULL_LINE as i64);
            a.li(regs::T[2], reg_addr(base, sp_reg::CMD));
            a.sd(regs::T[3], regs::T[2], 0);
            a.li(regs::T[2], reg_addr(base, sp_reg::BARRIER));
            a.ld(regs::T[4], regs::T[2], 0); // blocks until the pull lands
            a.halt();
            sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
            sys.run_until_halt(deadline)
                .unwrap_or_else(|e| panic!("{e}"));
            let ev = events.borrow();
            let (done, bd) = ev.pull_done.expect("pull completed");
            let issue = ev.pull_issue.expect("pull issued");
            let total = done - issue;
            // Residual time not in the carried breakdown is the response
            // crossing + fabric-side wait.
            let known = bd.total();
            let mut breakdown = bd;
            breakdown.cdc += total.saturating_sub(known);
            LatencyPoint {
                mechanism,
                fpga_mhz,
                total,
                breakdown,
                links: sys.link_reports(),
            }
        }
        Mechanism::CpuPullSlow | Mechanism::CpuPullProxy => {
            let buf_b = 0xB000u64;
            let mut a = Asm::new();
            a.label("main");
            a.li(regs::T[0], buf_b as i64);
            a.li(regs::T[2], reg_addr(base, sp_reg::BUF_B));
            a.sd(regs::T[0], regs::T[2], 0);
            a.li(regs::T[3], sp_op::OWN_LINE as i64);
            a.li(regs::T[2], reg_addr(base, sp_reg::CMD));
            a.sd(regs::T[3], regs::T[2], 0);
            a.li(regs::T[2], reg_addr(base, sp_reg::BARRIER));
            a.ld(regs::T[4], regs::T[2], 0); // FPGA cache now owns the line
                                             // Measured: one load that misses here and hits M in the
                                             // FPGA-side cache.
            a.rdcycle(regs::S[0]);
            a.ld(regs::T[5], regs::T[0], 0);
            a.rdcycle(regs::S[1]);
            a.li(regs::T[6], t0_addr);
            a.sd(regs::S[0], regs::T[6], 0);
            a.li(regs::T[6], t1_addr);
            a.sd(regs::S[1], regs::T[6], 0);
            a.fence();
            a.halt();
            sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
            sys.run_until_halt(deadline)
                .unwrap_or_else(|e| panic!("{e}"));
            let breakdown = sys.core(0).last_breakdown();
            sys.quiesce(deadline + Time::from_us(100))
                .unwrap_or_else(|e| panic!("{e}"));
            let cycles = sys.peek_u64(t1_addr as u64) - sys.peek_u64(t0_addr as u64);
            let total = clock.period().mul(cycles);
            let mut bd = breakdown;
            // Residual = time not in the carried transaction breakdown:
            // core-side fast-domain issue/receive (bounded by the
            // proxy-configuration cost) plus, for the slow-cache variant,
            // the NoC-side CDC crossings of the slow hub.
            let residual = total.saturating_sub(bd.total().min(total));
            let fast_share = residual.min(Time::from_ns(11));
            bd.cache_fast += fast_share;
            bd.cdc += residual.saturating_sub(fast_share);
            LatencyPoint {
                mechanism,
                fpga_mhz,
                total,
                breakdown: bd,
                links: sys.link_reports(),
            }
        }
    };
    let json = sys.trace_chrome_json();
    (point, json)
}

/// One measured point of Fig. 10.
#[derive(Clone, Copy, Debug)]
pub struct BandwidthPoint {
    /// Mechanism measured.
    pub mechanism: Mechanism,
    /// eFPGA clock, MHz.
    pub fpga_mhz: f64,
    /// Payload bytes moved in the measured direction.
    pub bytes: u64,
    /// Elapsed time of the measured phase.
    pub elapsed: Time,
}

impl BandwidthPoint {
    /// Bandwidth in MB/s.
    pub fn mbps(&self) -> f64 {
        if self.elapsed == Time::ZERO {
            return 0.0;
        }
        self.bytes as f64 / (self.elapsed.as_ps() as f64 * 1e-12) / 1e6
    }
}

/// Measures one Fig. 10 point. `nwords` quad-words are passed CPU→FPGA and
/// back (512 in the paper).
pub fn measure_bandwidth(mechanism: Mechanism, fpga_mhz: f64, nwords: u64) -> BandwidthPoint {
    let (mut sys, events) = build_system(mechanism, 1, fpga_mhz);
    let base = sys.config().mmio_base;
    let clock = sys.config().clock;
    let deadline = Time::from_us(60_000);
    let t0_addr = 0x9000u64;
    let t1_addr = 0x9008u64;

    match mechanism {
        Mechanism::NormalReg | Mechanism::ShadowReg => {
            // Write nwords integers one MMIO store at a time, then read
            // them all back (the paper's register-mechanism protocol).
            let mut a = Asm::new();
            a.label("main");
            a.li(regs::T[0], reg_addr(base, sp_reg::DATA));
            a.li(regs::T[6], reg_addr(base, sp_reg::RESULT));
            a.rdcycle(regs::S[0]);
            a.li(regs::S[2], 0);
            a.li(regs::S[3], nwords as i64);
            a.label("wr");
            a.sd(regs::S[2], regs::T[0], 0);
            a.addi(regs::S[2], regs::S[2], 1);
            a.blt(regs::S[2], regs::S[3], "wr");
            a.li(regs::S[2], 0);
            a.label("rd");
            a.ld(regs::T[1], regs::T[6], 0);
            a.addi(regs::S[2], regs::S[2], 1);
            a.blt(regs::S[2], regs::S[3], "rd");
            a.rdcycle(regs::S[1]);
            a.li(regs::T[5], t0_addr as i64);
            a.sd(regs::S[0], regs::T[5], 0);
            a.li(regs::T[5], t1_addr as i64);
            a.sd(regs::S[1], regs::T[5], 0);
            a.fence();
            a.halt();
            sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
            sys.run_until_halt(deadline)
                .unwrap_or_else(|e| panic!("{e}"));
            sys.quiesce(deadline + Time::from_us(100))
                .unwrap_or_else(|e| panic!("{e}"));
            let cycles = sys.peek_u64(t1_addr) - sys.peek_u64(t0_addr);
            BandwidthPoint {
                mechanism,
                fpga_mhz,
                bytes: nwords * 8 * 2, // both directions traverse MMIO
                elapsed: clock.period().mul(cycles),
            }
        }
        _ => {
            // Shared-memory protocol (Fig. 10): store nwords into buffer A,
            // signal via the barrier; the eFPGA copies A→B; CPU loads B.
            let buf_a = 0x10000u64;
            let buf_b = 0x20000u64;
            let mut a = Asm::new();
            a.label("main");
            a.li(regs::T[0], reg_addr(base, sp_reg::BUF_A));
            a.li(regs::T[1], buf_a as i64);
            a.sd(regs::T[1], regs::T[0], 0);
            a.li(regs::T[0], reg_addr(base, sp_reg::BUF_B));
            a.li(regs::T[1], buf_b as i64);
            a.sd(regs::T[1], regs::T[0], 0);
            a.li(regs::T[0], reg_addr(base, sp_reg::NWORDS));
            a.li(regs::T[1], nwords as i64);
            a.sd(regs::T[1], regs::T[0], 0);
            a.rdcycle(regs::S[0]);
            // Store the payload.
            a.li(regs::T[2], buf_a as i64);
            a.li(regs::S[2], 0);
            a.li(regs::S[3], nwords as i64);
            a.label("st");
            a.sd(regs::S[2], regs::T[2], 0);
            a.addi(regs::T[2], regs::T[2], 8);
            a.addi(regs::S[2], regs::S[2], 1);
            a.blt(regs::S[2], regs::S[3], "st");
            a.fence();
            // Kick the copy and block on the barrier.
            a.li(regs::T[0], reg_addr(base, sp_reg::CMD));
            a.li(regs::T[1], sp_op::COPY_A_TO_B as i64);
            a.sd(regs::T[1], regs::T[0], 0);
            a.li(regs::T[0], reg_addr(base, sp_reg::BARRIER));
            a.ld(regs::T[1], regs::T[0], 0);
            // Load the payload back.
            a.li(regs::T[2], buf_b as i64);
            a.li(regs::S[2], 0);
            a.label("lda");
            a.ld(regs::T[3], regs::T[2], 0);
            a.addi(regs::T[2], regs::T[2], 8);
            a.addi(regs::S[2], regs::S[2], 1);
            a.blt(regs::S[2], regs::S[3], "lda");
            a.rdcycle(regs::S[1]);
            a.li(regs::T[5], t0_addr as i64);
            a.sd(regs::S[0], regs::T[5], 0);
            a.li(regs::T[5], t1_addr as i64);
            a.sd(regs::S[1], regs::T[5], 0);
            a.fence();
            a.halt();
            sys.load_program(0, Arc::new(a.assemble().unwrap()), "main");
            sys.run_until_halt(deadline)
                .unwrap_or_else(|e| panic!("{e}"));
            sys.quiesce(deadline + Time::from_us(100))
                .unwrap_or_else(|e| panic!("{e}"));
            let ev = events.borrow();
            let bytes = nwords * 8;
            let elapsed = match mechanism {
                Mechanism::EfpgaPullSlow | Mechanism::EfpgaPullProxy => {
                    ev.bulk_pull_end.expect("pull phase ran")
                        - ev.bulk_pull_start.expect("pull phase ran")
                }
                _ => {
                    // CPU pull: the FPGA's store phase plus the CPU's load
                    // phase (sequential in this protocol).
                    let push = ev.bulk_push_end.expect("push phase ran")
                        - ev.bulk_push_start.expect("push phase ran");
                    let t1 = sys.peek_u64(t1_addr);
                    let load_cycles = {
                        // Approximate CPU load-phase time: from barrier
                        // release (push end) to the final rdcycle.
                        let end = clock.period().mul(t1);
                        end.saturating_sub(ev.bulk_push_end.unwrap())
                    };
                    push + load_cycles
                }
            };
            BandwidthPoint {
                mechanism,
                fpga_mhz,
                bytes,
                elapsed,
            }
        }
    }
}

/// One measured point of Fig. 11.
#[derive(Clone, Copy, Debug)]
pub struct ContentionPoint {
    /// Whether shadow registers were used.
    pub shadow: bool,
    /// Number of contending processors.
    pub processors: usize,
    /// Per-processor bandwidth, MB/s.
    pub per_proc_mbps: f64,
}

/// Measures one Fig. 11 point: `p` processors hammer the same soft
/// register with write/read pairs; eFPGA fixed at 500 MHz.
pub fn measure_contention(shadow: bool, p: usize, pairs_per_cpu: u64) -> ContentionPoint {
    let mechanism = if shadow {
        Mechanism::ShadowReg
    } else {
        Mechanism::NormalReg
    };
    let (mut sys, _events) = build_system(mechanism, p, 500.0);
    let base = sys.config().mmio_base;
    let clock = sys.config().clock;
    let mut a = Asm::new();
    a.label("main");
    a.li(regs::T[0], reg_addr(base, sp_reg::DATA));
    a.li(regs::T[6], reg_addr(base, sp_reg::RESULT));
    a.li(regs::S[2], 0);
    a.li(regs::S[3], pairs_per_cpu as i64);
    a.label("loop");
    a.sd(regs::S[2], regs::T[0], 0);
    a.ld(regs::T[1], regs::T[6], 0);
    a.addi(regs::S[2], regs::S[2], 1);
    a.blt(regs::S[2], regs::S[3], "loop");
    a.halt();
    let prog = Arc::new(a.assemble().unwrap());
    for i in 0..p {
        sys.load_program(i, prog.clone(), "main");
    }
    let t = sys
        .run_until_halt(Time::from_us(200_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let total_bytes = (p as u64) * pairs_per_cpu * 8 * 2;
    let per_proc = total_bytes as f64 / p as f64 / (t.as_ps() as f64 * 1e-12) / 1e6;
    let _ = clock;
    ContentionPoint {
        shadow,
        processors: p,
        per_proc_mbps: per_proc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_reg_latency_is_flat_across_fpga_clock() {
        let slow = measure_latency(Mechanism::ShadowReg, 20.0);
        let fast = measure_latency(Mechanism::ShadowReg, 500.0);
        // "The Shadow Registers also have a fixed latency."
        let ratio = slow.total.as_ps() as f64 / fast.total.as_ps() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "shadow latency must be clock-independent: {} vs {}",
            slow.total,
            fast.total
        );
    }

    #[test]
    fn normal_reg_latency_grows_as_fpga_slows() {
        let slow = measure_latency(Mechanism::NormalReg, 20.0);
        let fast = measure_latency(Mechanism::NormalReg, 500.0);
        assert!(
            slow.total.as_ps() > 2 * fast.total.as_ps(),
            "normal-reg latency must scale with the eFPGA clock: {} vs {}",
            slow.total,
            fast.total
        );
    }

    #[test]
    fn shadow_beats_normal_at_every_frequency() {
        for mhz in [20.0, 100.0, 500.0] {
            let n = measure_latency(Mechanism::NormalReg, mhz);
            let s = measure_latency(Mechanism::ShadowReg, mhz);
            assert!(
                s.total < n.total,
                "shadow ({}) must beat normal ({}) at {mhz} MHz",
                s.total,
                n.total
            );
        }
    }

    #[test]
    fn cpu_pull_proxy_is_flat_and_beats_slow_cache() {
        let p_slowclk = measure_latency(Mechanism::CpuPullProxy, 20.0);
        let p_fastclk = measure_latency(Mechanism::CpuPullProxy, 500.0);
        // "the Proxy Cache achieves a constant latency regardless of the
        // eFPGA clock frequency."
        let ratio = p_slowclk.total.as_ps() as f64 / p_fastclk.total.as_ps() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "proxy cpu-pull not flat: {} vs {}",
            p_slowclk.total,
            p_fastclk.total
        );
        let s = measure_latency(Mechanism::CpuPullSlow, 100.0);
        let p = measure_latency(Mechanism::CpuPullProxy, 100.0);
        assert!(
            p.total < s.total,
            "proxy ({}) must beat slow cache ({})",
            p.total,
            s.total
        );
    }

    #[test]
    fn efpga_pull_proxy_beats_slow_cache_more_as_clock_drops() {
        let s100 = measure_latency(Mechanism::EfpgaPullSlow, 100.0);
        let p100 = measure_latency(Mechanism::EfpgaPullProxy, 100.0);
        assert!(p100.total < s100.total);
        let s20 = measure_latency(Mechanism::EfpgaPullSlow, 20.0);
        let p20 = measure_latency(Mechanism::EfpgaPullProxy, 20.0);
        let red20 = 1.0 - p20.total.as_ps() as f64 / s20.total.as_ps() as f64;
        let red100 = 1.0 - p100.total.as_ps() as f64 / s100.total.as_ps() as f64;
        assert!(
            red20 > red100,
            "reduction should grow as the eFPGA slows: {red20:.2} vs {red100:.2}"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        for m in [Mechanism::EfpgaPullProxy, Mechanism::EfpgaPullSlow] {
            let p = measure_latency(m, 100.0);
            let sum = p.breakdown.total();
            let diff = sum.as_ps().abs_diff(p.total.as_ps());
            assert!(
                diff <= p.total.as_ps() / 5,
                "{}: breakdown {} vs total {}",
                m.label(),
                sum,
                p.total
            );
        }
    }

    #[test]
    fn bandwidth_proxy_beats_slow_cache() {
        let nwords = 64; // smaller than the paper's 512 to keep tests quick
        let p = measure_bandwidth(Mechanism::EfpgaPullProxy, 100.0, nwords);
        let s = measure_bandwidth(Mechanism::EfpgaPullSlow, 100.0, nwords);
        assert!(
            p.mbps() > s.mbps(),
            "proxy {:.0} MB/s must beat slow cache {:.0} MB/s",
            p.mbps(),
            s.mbps()
        );
    }

    #[test]
    fn shadow_regs_sustain_more_processors_than_normal() {
        let s1 = measure_contention(true, 1, 40);
        let s4 = measure_contention(true, 4, 40);
        let n1 = measure_contention(false, 1, 40);
        let n4 = measure_contention(false, 4, 40);
        // Shadow scales better: per-proc bandwidth degrades less.
        let s_scale = s4.per_proc_mbps / s1.per_proc_mbps;
        let n_scale = n4.per_proc_mbps / n1.per_proc_mbps;
        assert!(
            s_scale > n_scale,
            "shadow scaling {s_scale:.2} must beat normal {n_scale:.2}"
        );
    }
}
