//! Shared driver types for the seven application benchmarks of Fig. 12.

use duet_sim::Time;
use duet_system::{SystemConfig, Variant};

/// Which system a benchmark instance ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BenchVariant {
    /// Software on the processors only (warm caches, per Sec. V-A).
    ProcOnly,
    /// Duet: Proxy Caches + Shadow Registers.
    Duet,
    /// FPSoC-like: slow-domain FPGA cache + normal registers only.
    Fpsoc,
}

impl BenchVariant {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            BenchVariant::ProcOnly => "proc-only",
            BenchVariant::Duet => "duet",
            BenchVariant::Fpsoc => "fpsoc",
        }
    }

    /// Builds the matching system configuration.
    pub fn system_config(&self, p: usize, m: usize, fpga_mhz: f64) -> SystemConfig {
        match self {
            BenchVariant::ProcOnly => SystemConfig::proc_only(p),
            BenchVariant::Duet => SystemConfig::dolly(p, m, fpga_mhz),
            BenchVariant::Fpsoc => SystemConfig::fpsoc(p, m, fpga_mhz),
        }
    }

    /// Whether this variant offers shadow registers.
    pub fn push_mode(&self) -> bool {
        matches!(self, BenchVariant::Duet)
    }

    /// The `duet_system` variant enum.
    pub fn variant(&self) -> Variant {
        match self {
            BenchVariant::ProcOnly => Variant::ProcOnly,
            BenchVariant::Duet => Variant::Duet,
            BenchVariant::Fpsoc => Variant::Fpsoc,
        }
    }
}

/// The outcome of one benchmark run.
#[derive(Clone, Debug)]
pub struct AppResult {
    /// Benchmark name (e.g. `"popcount"`, `"sort/64"`).
    pub name: String,
    /// System variant.
    pub variant: BenchVariant,
    /// Processors used.
    pub processors: usize,
    /// Memory hubs used.
    pub memory_hubs: usize,
    /// eFPGA clock (MHz; meaningless for proc-only).
    pub fpga_mhz: f64,
    /// End-to-end runtime of the measured region.
    pub runtime: Time,
    /// Whether the computed result matched the reference.
    pub correct: bool,
}

impl AppResult {
    /// Speedup of `self` relative to `baseline` (>1 means faster).
    pub fn speedup_over(&self, baseline: &AppResult) -> f64 {
        baseline.runtime.as_ps() as f64 / self.runtime.as_ps() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let mk = |ps| AppResult {
            name: "x".into(),
            variant: BenchVariant::Duet,
            processors: 1,
            memory_hubs: 1,
            fpga_mhz: 100.0,
            runtime: Time::from_ps(ps),
            correct: true,
        };
        let base = mk(1000);
        let fast = mk(250);
        assert_eq!(fast.speedup_over(&base), 4.0);
    }

    #[test]
    fn variant_configs() {
        let d = BenchVariant::Duet.system_config(2, 1, 150.0);
        assert_eq!(d.variant, Variant::Duet);
        assert!(d.has_fpga);
        let p = BenchVariant::ProcOnly.system_config(2, 0, 150.0);
        assert!(!p.has_fpga);
        assert!(BenchVariant::Duet.push_mode());
        assert!(!BenchVariant::Fpsoc.push_mode());
    }
}
