//! **Barnes-Hut** (P4M1, fine-grained acceleration; Sec. III-A2 and V-D).
//!
//! N-body force calculation over an octree. Exactly as Fig. 7 prescribes:
//! the processors own the tree traversal ("loop-carry dependencies and
//! dynamic control flow are handled by the processors"), the force kernels
//! run on the eFPGA, the processors and accelerator overlap through
//! software pipelining (interaction commands stream through the FPGA-bound
//! FIFO while traversal continues), and a single pipelined accelerator is
//! time-multiplexed by four CPU threads.
//!
//! Modelling note (documented substitution): the paper's two kernels
//! (`CalcForce` for particle-particle, `ApproxForce` for cell monopoles)
//! collapse into one kernel here because leaves hold single particles and
//! cells interact through their center of mass — the standard monopole
//! formulation. The traversal structure, invocation pattern, and memory
//! behaviour (a few cachelines at random addresses per invocation) are
//! preserved.

use std::collections::VecDeque;
use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};

/// Accelerator clock from Table II.
pub const BH_MHZ: f64 = 85.0;

/// Gravitational softening.
pub const EPS: f64 = 1e-4;

/// Opening criterion θ² (interact when `size² ≤ θ²·d²`).
pub const THETA2: f64 = 0.25;

/// Sentinel for "no child".
const NO_CHILD: u16 = 0xFFFF;

/// Sentinel for "internal node" in the leaf field.
const NOT_LEAF: u32 = 0xFFFF_FFFF;

/// A particle.
#[derive(Clone, Copy, Debug)]
pub struct Particle {
    /// Position.
    pub pos: [f64; 3],
    /// Mass.
    pub mass: f64,
}

/// One octree node (64 bytes in simulated memory).
#[derive(Clone, Copy, Debug)]
pub struct BhNode {
    /// Center of mass.
    pub com: [f64; 3],
    /// Total mass.
    pub mass: f64,
    /// Cell side length squared.
    pub size2: f64,
    /// Particle index if this is a leaf, else `NOT_LEAF` (0xFFFF_FFFF).
    pub leaf: u32,
    /// Child node ids (`NO_CHILD` = 0xFFFF = empty octant).
    pub children: [u16; 8],
}

/// Builds an octree over the unit cube.
pub fn build_octree(particles: &[Particle]) -> Vec<BhNode> {
    let mut nodes = Vec::new();
    let idx: Vec<u32> = (0..particles.len() as u32).collect();
    build_rec(particles, &idx, [0.5, 0.5, 0.5], 0.5, &mut nodes);
    nodes
}

fn build_rec(
    particles: &[Particle],
    idx: &[u32],
    center: [f64; 3],
    half: f64,
    nodes: &mut Vec<BhNode>,
) -> u16 {
    let id = nodes.len() as u16;
    assert!(nodes.len() < usize::from(NO_CHILD), "octree too large");
    let mass: f64 = idx.iter().map(|&i| particles[i as usize].mass).sum();
    let mut com = [0.0; 3];
    for &i in idx {
        let p = &particles[i as usize];
        for (c, x) in com.iter_mut().zip(p.pos) {
            *c += x * p.mass;
        }
    }
    for c in com.iter_mut() {
        *c /= mass.max(1e-300);
    }
    nodes.push(BhNode {
        com,
        mass,
        size2: (2.0 * half) * (2.0 * half),
        leaf: if idx.len() == 1 { idx[0] } else { NOT_LEAF },
        children: [NO_CHILD; 8],
    });
    if idx.len() > 1 {
        let mut buckets: [Vec<u32>; 8] = Default::default();
        for &i in idx {
            let p = particles[i as usize].pos;
            let o = usize::from(p[0] >= center[0])
                | usize::from(p[1] >= center[1]) << 1
                | usize::from(p[2] >= center[2]) << 2;
            buckets[o].push(i);
        }
        for (o, b) in buckets.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            let h = half / 2.0;
            let c = [
                center[0] + if o & 1 != 0 { h } else { -h },
                center[1] + if o & 2 != 0 { h } else { -h },
                center[2] + if o & 4 != 0 { h } else { -h },
            ];
            let child = build_rec(particles, b, c, h, nodes);
            nodes[usize::from(id)].children[o] = child;
        }
    }
    id
}

/// The force kernel, shared verbatim by the reference, the baseline IR,
/// and the accelerator model so results agree bit-for-bit.
pub fn kernel(pos: [f64; 3], com: [f64; 3], mass: f64) -> [f64; 3] {
    let dx = com[0] - pos[0];
    let dy = com[1] - pos[1];
    let dz = com[2] - pos[2];
    let d2 = dx * dx + dy * dy + dz * dz + EPS;
    let inv = 1.0 / (d2 * d2.sqrt());
    let f = mass * inv;
    [f * dx, f * dy, f * dz]
}

/// Reference traversal with the same stack discipline as the IR (children
/// pushed in index order, popped LIFO).
pub fn forces_ref(particles: &[Particle], nodes: &[BhNode]) -> Vec<[f64; 3]> {
    particles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut acc = [0.0f64; 3];
            let mut stack = vec![0u16];
            while let Some(n) = stack.pop() {
                let node = &nodes[usize::from(n)];
                if node.leaf == i as u32 {
                    continue;
                }
                let dx = node.com[0] - p.pos[0];
                let dy = node.com[1] - p.pos[1];
                let dz = node.com[2] - p.pos[2];
                let d2 = dx * dx + dy * dy + dz * dz;
                if node.leaf != NOT_LEAF || node.size2 <= THETA2 * d2 {
                    let f = kernel(p.pos, node.com, node.mass);
                    for d in 0..3 {
                        acc[d] += f[d];
                    }
                } else {
                    for &c in &node.children {
                        if c != NO_CHILD {
                            stack.push(c);
                        }
                    }
                }
            }
            acc
        })
        .collect()
}

/// Commands to the accelerator (top two bits of the packed word).
mod bh_op {
    pub const INTERACT: u64 = 0;
    pub const SET_PARTICLE: u64 = 1;
    pub const GET: u64 = 2;
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    core: usize,
    addr: u64,
    fills: u8,
    line0: [u8; 16],
    line1: [u8; 16],
    line2: [u8; 16],
    is_set: bool,
}

/// The Barnes-Hut force pipeline: time-multiplexed by the CPU threads,
/// fetching node records through Memory Hub 0, accumulating per-core
/// force components in fabric registers.
pub struct BhAccel {
    regs: FabricRegFile,
    cores: usize,
    pos: Vec<[f64; 3]>,
    acc: Vec<[f64; 3]>,
    outstanding: Vec<u32>,
    pending_get: Vec<bool>,
    cmds: VecDeque<u64>,
    inflight: VecDeque<InFlight>,
    next_id: u64,
    nodes_base: u64,
    particles_base: u64,
}

impl BhAccel {
    /// Creates the pipeline for `cores` threads.
    pub fn new(push_mode: bool, cores: usize, nodes_base: u64, particles_base: u64) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        for c in 0..cores {
            regs.set_queue(8 + c);
        }
        BhAccel {
            regs,
            cores,
            pos: vec![[0.0; 3]; cores],
            acc: vec![[0.0; 3]; cores],
            outstanding: vec![0; cores],
            pending_get: vec![false; cores],
            cmds: VecDeque::new(),
            inflight: VecDeque::new(),
            next_id: 1,
            nodes_base,
            particles_base,
        }
    }

    fn complete(&mut self, fl: InFlight) {
        let f64_at = |line: &[u8; 16], o: usize| {
            f64::from_bits(u64::from_le_bytes(line[o..o + 8].try_into().unwrap()))
        };
        if fl.is_set {
            self.pos[fl.core] = [
                f64_at(&fl.line0, 0),
                f64_at(&fl.line0, 8),
                f64_at(&fl.line1, 0),
            ];
            self.acc[fl.core] = [0.0; 3];
        } else {
            let com = [
                f64_at(&fl.line0, 0),
                f64_at(&fl.line0, 8),
                f64_at(&fl.line1, 0),
            ];
            let mass = f64_at(&fl.line1, 8);
            let f = kernel(self.pos[fl.core], com, mass);
            for (a, fd) in self.acc[fl.core].iter_mut().zip(f) {
                *a += fd;
            }
        }
        self.outstanding[fl.core] -= 1;
    }
}

impl duet_sim::Pack for InFlight {
    fn pack(&self, w: &mut duet_sim::SnapWriter) {
        self.core.pack(w);
        self.addr.pack(w);
        self.fills.pack(w);
        self.line0.pack(w);
        self.line1.pack(w);
        self.line2.pack(w);
        self.is_set.pack(w);
    }

    fn unpack(r: &mut duet_sim::SnapReader<'_>) -> Result<Self, duet_sim::SnapError> {
        use duet_sim::Pack;
        Ok(InFlight {
            core: Pack::unpack(r)?,
            addr: Pack::unpack(r)?,
            fills: Pack::unpack(r)?,
            line0: Pack::unpack(r)?,
            line1: Pack::unpack(r)?,
            line2: Pack::unpack(r)?,
            is_set: Pack::unpack(r)?,
        })
    }
}

impl SoftAccelerator for BhAccel {
    fn name(&self) -> &str {
        "barnes-hut"
    }

    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.pos.pack(w);
        self.acc.pack(w);
        self.outstanding.pack(w);
        self.pending_get.pack(w);
        self.cmds.pack(w);
        self.inflight.pack(w);
        self.next_id.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.pos = Pack::unpack(r)?;
        self.acc = Pack::unpack(r)?;
        self.outstanding = Pack::unpack(r)?;
        self.pending_get = Pack::unpack(r)?;
        self.cmds = Pack::unpack(r)?;
        self.inflight = Pack::unpack(r)?;
        self.next_id = Pack::unpack(r)?;
        if self.pos.len() != self.cores || self.acc.len() != self.cores {
            return Err(duet_sim::SnapError::Corrupt(
                "barnes-hut core count mismatch",
            ));
        }
        Ok(())
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);
        while let Some(cmd) = self.regs.pop_write(0) {
            self.cmds.push_back(cmd);
        }

        // Fills: each in-flight fetch consumes two line loads (ids 2k,
        // 2k+1 map to the front-most incomplete entries in order thanks to
        // FIFO delivery).
        while let Some(resp) = ports.hubs[0].pop_resp(now) {
            if let FpgaRespKind::LoadAck { data } = resp.kind {
                let slot = resp.id >> 1;
                if let Some(pos) = self.inflight.iter().position(|f| f.addr == slot) {
                    let fl = &mut self.inflight[pos];
                    if resp.id & 1 == 0 {
                        fl.line0 = data;
                    } else {
                        fl.line1 = data;
                    }
                    let _ = fl.line2;
                    fl.fills += 1;
                    if fl.fills == 2 {
                        let done = self.inflight.remove(pos).unwrap();
                        self.complete(done);
                    }
                }
            }
        }

        // Dispatch one command per cycle (II = 1 into the fetch stage).
        if let Some(&cmd) = self.cmds.front() {
            let op = cmd >> 62;
            let core = ((cmd >> 48) & 0xFF) as usize % self.cores;
            let id_field = cmd & 0xFFFF_FFFF;
            match op {
                bh_op::GET => {
                    self.cmds.pop_front();
                    self.pending_get[core] = true;
                }
                bh_op::SET_PARTICLE | bh_op::INTERACT => {
                    let base = if op == bh_op::SET_PARTICLE {
                        self.particles_base + id_field * 32
                    } else {
                        self.nodes_base + id_field * 64
                    };
                    // Two line fetches; id encodes (slot, half).
                    let slot = self.next_id;
                    let ok0 = ports.hubs[0].load_line(now, slot << 1, base);
                    let ok1 = ok0 && ports.hubs[0].load_line(now, (slot << 1) | 1, base + 16);
                    if ok0 && ok1 {
                        self.next_id += 1;
                        self.cmds.pop_front();
                        self.outstanding[core] += 1;
                        self.inflight.push_back(InFlight {
                            core,
                            addr: slot,
                            fills: 0,
                            line0: [0; 16],
                            line1: [0; 16],
                            line2: [0; 16],
                            is_set: op == bh_op::SET_PARTICLE,
                        });
                    }
                }
                _ => {
                    self.cmds.pop_front();
                }
            }
        }

        // Serve completed GETs: all of that core's interactions retired.
        for c in 0..self.cores {
            if self.pending_get[c] && self.outstanding[c] == 0 {
                self.pending_get[c] = false;
                for d in 0..3 {
                    self.regs.push_result(8 + c, self.acc[c][d].to_bits());
                }
            }
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (Barnes-Hut: 85 MHz, norm. area
        // 14.22, CLB 0.99, BRAM 0.05).
        NetlistSummary {
            name: "barnes-hut",
            luts: 46360,
            ffs: 64904,
            bram_kbits: 1344,
            mults: 64,
            logic_levels: 5,
        }
    }

    fn reset(&mut self) {
        self.cmds.clear();
        self.inflight.clear();
    }
}

/// Memory layout.
#[derive(Clone, Copy, Debug)]
pub struct BhLayout {
    /// Particles: x, y, z, mass (32 B each).
    pub particles: u64,
    /// Octree nodes (64 B each).
    pub nodes: u64,
    /// Output accelerations (3 × f64 per particle, 32 B stride).
    pub out: u64,
    /// Per-core traversal stacks.
    pub stacks: u64,
}

impl BhLayout {
    /// Default layout.
    pub fn new() -> Self {
        BhLayout {
            particles: 0x1_0000,
            nodes: 0x4_0000,
            out: 0xA_0000,
            stacks: 0xC_0000,
        }
    }
}

impl Default for BhLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Generates `n` random particles in the unit cube.
pub fn generate(n: usize, seed: u64) -> Vec<Particle> {
    let mut rng = SimRng::new(seed);
    (0..n)
        .map(|_| Particle {
            pos: [rng.next_f64(), rng.next_f64(), rng.next_f64()],
            mass: 1.0 + rng.next_f64(),
        })
        .collect()
}

/// Emits the traversal shared by both variants. Per particle `S[0]=i`:
/// walks the tree with an explicit stack; for each accepted interaction it
/// jumps to `interact_label` (node id in `T[6]`; must preserve S regs,
/// A0-A2) via `call`.
fn emit_traversal(a: &mut Asm, layout: &BhLayout, interact_label: &str) {
    let i = regs::S[0];
    let sp = regs::S[1];
    let n = regs::S[2];
    let (px, py, pz) = (regs::A[0], regs::A[1], regs::A[2]);
    // Load particle position.
    a.slli(regs::T[0], i, 5);
    a.li(regs::T[1], layout.particles as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.ld(px, regs::T[0], 0);
    a.ld(py, regs::T[0], 8);
    a.ld(pz, regs::T[0], 16);
    // Stack: per-core region; push root (0).
    a.coreid(regs::T[0]);
    a.slli(regs::T[0], regs::T[0], 12);
    a.li(sp, layout.stacks as i64);
    a.add(sp, sp, regs::T[0]);
    a.mv(regs::S[3], sp); // stack base
    a.sd(duet_cpu::isa::Reg::ZERO, sp, 0);
    a.addi(sp, sp, 8);
    a.label("walk");
    a.bgeu(regs::S[3], sp, "walk_done");
    a.addi(sp, sp, -8);
    a.ld(n, sp, 0);
    // node base = nodes + n*64
    a.slli(regs::T[0], n, 6);
    a.li(regs::T[1], layout.nodes as i64);
    a.add(regs::S[4], regs::T[0], regs::T[1]);
    // leaf field
    a.lwu(regs::T[2], regs::S[4], 40);
    a.beq(regs::T[2], i, "walk"); // self-interaction: skip
                                  // d2 = |com - p|^2
    a.ld(regs::T[3], regs::S[4], 0);
    a.fsub(regs::T[3], regs::T[3], px);
    a.fmul(regs::T[3], regs::T[3], regs::T[3]);
    a.ld(regs::T[4], regs::S[4], 8);
    a.fsub(regs::T[4], regs::T[4], py);
    a.fmul(regs::T[4], regs::T[4], regs::T[4]);
    a.fadd(regs::T[3], regs::T[3], regs::T[4]);
    a.ld(regs::T[4], regs::S[4], 16);
    a.fsub(regs::T[4], regs::T[4], pz);
    a.fmul(regs::T[4], regs::T[4], regs::T[4]);
    a.fadd(regs::T[3], regs::T[3], regs::T[4]); // d2
                                                // Leaf (of another particle): always interact.
    a.li(regs::T[5], NOT_LEAF as i64);
    a.bne(regs::T[2], regs::T[5], "interact_site");
    // size2 <= theta2 * d2 ?
    a.lfd(regs::T[4], THETA2);
    a.fmul(regs::T[4], regs::T[4], regs::T[3]);
    a.ld(regs::T[5], regs::S[4], 32);
    a.fcmple(regs::T[6], regs::T[5], regs::T[4]);
    a.bnez(regs::T[6], "interact_site");
    // Open: push the (up to 8) children, packed as u16 in two u64s.
    for half in 0..2 {
        a.ld(regs::T[0], regs::S[4], 48 + half * 8);
        for k in 0..4 {
            if k > 0 {
                a.srli(regs::T[0], regs::T[0], 16);
            }
            a.andi(regs::T[1], regs::T[0], 0xFFFF);
            a.li(regs::T[2], i64::from(NO_CHILD));
            a.beq(regs::T[1], regs::T[2], &format!("skip_{half}_{k}"));
            a.sd(regs::T[1], sp, 0);
            a.addi(sp, sp, 8);
            a.label(&format!("skip_{half}_{k}"));
        }
    }
    a.j("walk");
    a.label("interact_site");
    a.mv(regs::T[6], n);
    a.call(interact_label);
    a.j("walk");
    a.label("walk_done");
}

/// Runs the Barnes-Hut force phase with `p` workers over `n` particles.
pub fn run(variant: BenchVariant, p: usize, n: usize, seed: u64) -> AppResult {
    let layout = BhLayout::new();
    let particles = generate(n, seed);
    let nodes = build_octree(&particles);
    let expected = forces_ref(&particles, &nodes);
    let mut sys = System::new(variant.system_config(p, 1, BH_MHZ)).expect("valid config");
    for (i, pt) in particles.iter().enumerate() {
        let b = layout.particles + (i as u64) * 32;
        sys.poke_f64(b, pt.pos[0]);
        sys.poke_f64(b + 8, pt.pos[1]);
        sys.poke_f64(b + 16, pt.pos[2]);
        sys.poke_f64(b + 24, pt.mass);
    }
    for (id, nd) in nodes.iter().enumerate() {
        let b = layout.nodes + (id as u64) * 64;
        sys.poke_f64(b, nd.com[0]);
        sys.poke_f64(b + 8, nd.com[1]);
        sys.poke_f64(b + 16, nd.com[2]);
        sys.poke_f64(b + 24, nd.mass);
        sys.poke_f64(b + 32, nd.size2);
        sys.poke_u64(b + 40, u64::from(nd.leaf));
        for half in 0..2 {
            let mut w = 0u64;
            for k in 0..4 {
                w |= u64::from(nd.children[half * 4 + k]) << (16 * k);
            }
            sys.poke_u64(b + 48 + (half as u64) * 8, w);
        }
    }

    // Particle ranges per core.
    let chunk = n.div_ceil(p);
    let prog = match variant {
        BenchVariant::ProcOnly => {
            let mut a = Asm::new();
            a.label("main");
            // i = coreid*chunk .. min(n, +chunk); acc in S5..S7.
            a.coreid(regs::T[0]);
            a.li(regs::T[1], chunk as i64);
            a.mul(regs::S[0], regs::T[0], regs::T[1]);
            a.add(regs::A[3], regs::S[0], regs::T[1]);
            a.li(regs::T[2], n as i64);
            a.blt(regs::A[3], regs::T[2], "clamped");
            a.mv(regs::A[3], regs::T[2]);
            a.label("clamped");
            a.label("particle");
            a.bgeu(regs::S[0], regs::A[3], "all_done");
            a.lfd(regs::S[5], 0.0);
            a.lfd(regs::S[6], 0.0);
            a.lfd(regs::S[7], 0.0);
            emit_traversal(&mut a, &layout, "force");
            // store acc to out[i]
            a.slli(regs::T[0], regs::S[0], 5);
            a.li(regs::T[1], layout.out as i64);
            a.add(regs::T[0], regs::T[0], regs::T[1]);
            a.sd(regs::S[5], regs::T[0], 0);
            a.sd(regs::S[6], regs::T[0], 8);
            a.sd(regs::S[7], regs::T[0], 16);
            a.addi(regs::S[0], regs::S[0], 1);
            a.j("particle");
            a.label("all_done");
            a.fence();
            a.halt();
            // force(node T6): the inline kernel. Clobbers T0-T5, A4, A5.
            a.label("force");
            a.slli(regs::T[0], regs::T[6], 6);
            a.li(regs::T[1], layout.nodes as i64);
            a.add(regs::T[0], regs::T[0], regs::T[1]);
            // dx,dy,dz
            a.ld(regs::T[1], regs::T[0], 0);
            a.fsub(regs::T[1], regs::T[1], regs::A[0]);
            a.ld(regs::T[2], regs::T[0], 8);
            a.fsub(regs::T[2], regs::T[2], regs::A[1]);
            a.ld(regs::T[3], regs::T[0], 16);
            a.fsub(regs::T[3], regs::T[3], regs::A[2]);
            // d2 = dx2+dy2+dz2+EPS
            a.fmul(regs::T[4], regs::T[1], regs::T[1]);
            a.fmul(regs::T[5], regs::T[2], regs::T[2]);
            a.fadd(regs::T[4], regs::T[4], regs::T[5]);
            a.fmul(regs::T[5], regs::T[3], regs::T[3]);
            a.fadd(regs::T[4], regs::T[4], regs::T[5]);
            a.lfd(regs::T[5], EPS);
            a.fadd(regs::T[4], regs::T[4], regs::T[5]);
            // inv = 1/(d2*sqrt(d2)); f = mass*inv
            a.fsqrt(regs::T[5], regs::T[4]);
            a.fmul(regs::T[4], regs::T[4], regs::T[5]);
            a.lfd(regs::A[4], 1.0);
            a.fdiv(regs::T[4], regs::A[4], regs::T[4]);
            a.ld(regs::A[5], regs::T[0], 24); // mass
            a.fmul(regs::T[4], regs::A[5], regs::T[4]);
            // acc += f * d
            a.fmul(regs::T[1], regs::T[4], regs::T[1]);
            a.fadd(regs::S[5], regs::S[5], regs::T[1]);
            a.fmul(regs::T[2], regs::T[4], regs::T[2]);
            a.fadd(regs::S[6], regs::S[6], regs::T[2]);
            a.fmul(regs::T[3], regs::T[4], regs::T[3]);
            a.fadd(regs::S[7], regs::S[7], regs::T[3]);
            a.ret();
            a.assemble().unwrap()
        }
        _ => {
            let base = sys.config().mmio_base;
            sys.set_reg_mode(0, RegMode::FpgaBound);
            for c in 0..p {
                sys.set_reg_mode(8 + c, RegMode::CpuBound);
            }
            sys.attach_accelerator(Box::new(BhAccel::new(
                variant.push_mode(),
                p,
                layout.nodes,
                layout.particles,
            )));
            let mut a = Asm::new();
            a.label("main");
            a.coreid(regs::T[0]);
            a.li(regs::T[1], chunk as i64);
            a.mul(regs::S[0], regs::T[0], regs::T[1]);
            a.add(regs::A[3], regs::S[0], regs::T[1]);
            a.li(regs::T[2], n as i64);
            a.blt(regs::A[3], regs::T[2], "clamped");
            a.mv(regs::A[3], regs::T[2]);
            a.label("clamped");
            // A6 = cmd reg addr; A7 = per-core result reg addr;
            // S5 = coreid<<48 template.
            a.li(regs::A[6], base as i64);
            a.coreid(regs::T[0]);
            a.slli(regs::T[1], regs::T[0], 3);
            a.li(regs::A[7], (base + 64) as i64);
            a.add(regs::A[7], regs::A[7], regs::T[1]);
            a.slli(regs::S[5], regs::T[0], 48);
            a.label("particle");
            a.bgeu(regs::S[0], regs::A[3], "all_done");
            // SET_PARTICLE
            a.li(regs::T[0], (bh_op::SET_PARTICLE << 62) as i64);
            a.or(regs::T[0], regs::T[0], regs::S[5]);
            a.or(regs::T[0], regs::T[0], regs::S[0]);
            a.sd(regs::T[0], regs::A[6], 0);
            emit_traversal(&mut a, &layout, "force");
            // GET + read three components.
            a.li(regs::T[0], (bh_op::GET << 62) as i64);
            a.or(regs::T[0], regs::T[0], regs::S[5]);
            a.sd(regs::T[0], regs::A[6], 0);
            a.slli(regs::T[1], regs::S[0], 5);
            a.li(regs::T[2], layout.out as i64);
            a.add(regs::T[1], regs::T[1], regs::T[2]);
            for d in 0..3 {
                a.ld(regs::T[3], regs::A[7], 0);
                a.sd(regs::T[3], regs::T[1], d * 8);
            }
            a.addi(regs::S[0], regs::S[0], 1);
            a.j("particle");
            a.label("all_done");
            a.fence();
            a.halt();
            // force(node T6): one FPGA-bound FIFO write (software
            // pipelining: the CPU keeps traversing while the pipeline
            // works).
            a.label("force");
            a.li(regs::T[0], (bh_op::INTERACT << 62) as i64);
            a.or(regs::T[0], regs::T[0], regs::S[5]);
            a.or(regs::T[0], regs::T[0], regs::T[6]);
            a.sd(regs::T[0], regs::A[6], 0);
            a.ret();
            a.assemble().unwrap()
        }
    };
    let prog = Arc::new(prog);
    for c in 0..p {
        sys.load_program(c, prog.clone(), "main");
    }
    if variant == BenchVariant::ProcOnly {
        for c in 0..p {
            sys.warm_shared(layout.particles, (n as u64) * 32, c);
            sys.warm_shared(layout.nodes, (nodes.len() as u64) * 64, c);
        }
    }
    let runtime = sys
        .run_until_halt(Time::from_us(120_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(121_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let correct = (0..n).all(|i| {
        (0..3).all(|d| {
            let got = sys.peek_f64(layout.out + (i as u64) * 32 + (d as u64) * 8);
            let want = expected[i][d];
            (got - want).abs() <= 1e-9 * want.abs().max(1.0)
        })
    });
    AppResult {
        name: "barnes-hut".into(),
        variant,
        processors: p,
        memory_hubs: 1,
        fpga_mhz: BH_MHZ,
        runtime,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octree_mass_is_conserved() {
        let ps = generate(24, 7);
        let nodes = build_octree(&ps);
        let total: f64 = ps.iter().map(|p| p.mass).sum();
        assert!((nodes[0].mass - total).abs() < 1e-9);
        assert_eq!(nodes[0].leaf, NOT_LEAF);
    }

    #[test]
    fn reference_forces_attract() {
        // Two particles attract each other along the connecting line.
        let ps = vec![
            Particle {
                pos: [0.25, 0.5, 0.5],
                mass: 1.0,
            },
            Particle {
                pos: [0.75, 0.5, 0.5],
                mass: 1.0,
            },
        ];
        let nodes = build_octree(&ps);
        let f = forces_ref(&ps, &nodes);
        assert!(f[0][0] > 0.0 && f[1][0] < 0.0);
        assert!((f[0][0] + f[1][0]).abs() < 1e-12, "Newton's third law");
    }

    #[test]
    fn baseline_single_core_matches_reference() {
        let r = run(BenchVariant::ProcOnly, 1, 10, 3);
        assert!(r.correct);
    }

    #[test]
    fn baseline_multicore_matches_reference() {
        let r = run(BenchVariant::ProcOnly, 2, 12, 3);
        assert!(r.correct);
    }

    #[test]
    fn accelerated_matches_reference() {
        let r = run(BenchVariant::Duet, 2, 12, 3);
        assert!(r.correct, "accelerator forces diverged");
    }

    #[test]
    fn duet_beats_baseline_and_fpsoc() {
        let base = run(BenchVariant::ProcOnly, 2, 16, 5);
        let duet = run(BenchVariant::Duet, 2, 16, 5);
        let fpsoc = run(BenchVariant::Fpsoc, 2, 16, 5);
        assert!(base.correct && duet.correct && fpsoc.correct);
        assert!(
            duet.runtime < base.runtime,
            "duet {} vs baseline {}",
            duet.runtime,
            base.runtime
        );
        assert!(
            duet.runtime < fpsoc.runtime,
            "duet {} vs fpsoc {}",
            duet.runtime,
            fpsoc.runtime
        );
    }
}
