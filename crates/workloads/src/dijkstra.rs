//! **Dijkstra** (P1M1, fine-grained acceleration with a soft cache;
//! Sec. V-D).
//!
//! "We implement an accelerator for Dijkstra's Shortest Path algorithm
//! with Catapult HLS and use a soft cache to exploit data locality between
//! consecutive calls to the accelerator."
//!
//! The engine runs the O(V²) kernel on the fabric: a pipelined min-scan
//! over the distance array followed by edge relaxation, with the distance
//! array and edge stream flowing through its **soft cache** (Duet) — the
//! cross-round reuse the paper highlights — or directly through the slow
//! FPGA-side cache (FPSoC: "soft caches become unnecessary and can be
//! removed"). The processor-only baseline is the classic O(V²) array
//! implementation.

use std::sync::Arc;

use duet_core::RegMode;
use duet_cpu::asm::Asm;
use duet_cpu::isa::regs;
use duet_fpga::fabric::NetlistSummary;
use duet_fpga::ports::{FabricPorts, FpgaRespKind, HubPort, SoftAccelerator};
use duet_fpga::regfile::FabricRegFile;
use duet_fpga::soft_cache::{SoftCache, SoftCacheConfig};
use duet_mem::types::{LineData, Width};
use duet_sim::{SimRng, Time};
use duet_system::System;

use crate::common::{AppResult, BenchVariant};

/// Accelerator clock from Table II.
pub const DIJKSTRA_MHZ: f64 = 127.0;

/// Infinity marker for unreached nodes.
pub const INF: u32 = u32::MAX;

/// A generated weighted digraph in CSR form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Per-node `(first_edge, degree)`.
    pub offsets: Vec<(u32, u32)>,
    /// Edges as `(dest, weight)`.
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Generates a connected random digraph with `v` nodes and about
    /// `v * avg_deg` edges.
    pub fn generate(v: u32, avg_deg: u32, seed: u64) -> Self {
        let mut rng = SimRng::new(seed);
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); v as usize];
        // Ring backbone for connectivity.
        for u in 0..v {
            let w = 1 + (rng.next_below(15)) as u32;
            adj[u as usize].push(((u + 1) % v, w));
        }
        for _ in 0..v * avg_deg.saturating_sub(1) {
            let a = rng.next_below(u64::from(v)) as u32;
            let b = rng.next_below(u64::from(v)) as u32;
            if a != b {
                let w = 1 + (rng.next_below(31)) as u32;
                adj[a as usize].push((b, w));
            }
        }
        let mut offsets = Vec::with_capacity(v as usize);
        let mut edges = Vec::new();
        for l in &adj {
            offsets.push((edges.len() as u32, l.len() as u32));
            edges.extend_from_slice(l);
        }
        Graph { offsets, edges }
    }

    /// Reference single-source shortest paths from node 0.
    pub fn dijkstra_ref(&self) -> Vec<u32> {
        let v = self.offsets.len();
        let mut dist = vec![INF; v];
        let mut visited = vec![false; v];
        dist[0] = 0;
        for _ in 0..v {
            let mut u = usize::MAX;
            let mut best = INF;
            for (i, &d) in dist.iter().enumerate() {
                if !visited[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            if u == usize::MAX {
                break;
            }
            visited[u] = true;
            let (off, deg) = self.offsets[u];
            for e in off..off + deg {
                let (w, wt) = self.edges[e as usize];
                let nd = dist[u].saturating_add(wt);
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                }
            }
        }
        dist
    }
}

/// Memory layout.
#[derive(Clone, Copy, Debug)]
pub struct DijkstraLayout {
    /// `(off, deg)` packed as u64 per node.
    pub offsets: u64,
    /// Edges: `dest | weight<<32` per u64.
    pub edges: u64,
    /// Distance array (u32 per node).
    pub dist: u64,
    /// Visited flags (u8 per node), baseline/CPU side only.
    pub visited: u64,
}

impl DijkstraLayout {
    /// Default layout.
    pub fn new() -> Self {
        DijkstraLayout {
            offsets: 0x1_0000,
            edges: 0x2_0000,
            dist: 0x4_0000,
            visited: 0x5_0000,
        }
    }
}

impl Default for DijkstraLayout {
    fn default() -> Self {
        Self::new()
    }
}

/// Fabric-side memory path: through a soft cache (Duet) or straight to the
/// Memory Hub (FPSoC, where the slow proxy is the cache).
enum MemPath {
    Cached(SoftCache),
    Direct {
        pending: Option<(u64, u64)>,
        got: Option<(u64, LineData)>,
        stores_outstanding: u32,
        next_id: u64,
    },
}

impl MemPath {
    fn new(use_soft_cache: bool) -> Self {
        if use_soft_cache {
            MemPath::Cached(SoftCache::new(SoftCacheConfig::typical(), 1 << 32))
        } else {
            MemPath::Direct {
                pending: None,
                got: None,
                stores_outstanding: 0,
                next_id: 1,
            }
        }
    }

    /// Absorbs hub responses and pumps buffered writes.
    fn pump(&mut self, now: Time, hub: &mut HubPort<'_>) {
        match self {
            MemPath::Cached(sc) => {
                while let Some(resp) = hub.pop_resp(now) {
                    sc.handle_resp(&resp);
                }
                sc.tick(now, hub);
            }
            MemPath::Direct {
                pending,
                got,
                stores_outstanding,
                ..
            } => {
                while let Some(resp) = hub.pop_resp(now) {
                    match resp.kind {
                        FpgaRespKind::LoadAck { data } => {
                            if let Some((id, addr)) = *pending {
                                if id == resp.id {
                                    *got = Some((addr & !0xF, data));
                                    *pending = None;
                                }
                            }
                        }
                        FpgaRespKind::StoreAck { .. } => {
                            *stores_outstanding = stores_outstanding.saturating_sub(1);
                        }
                        FpgaRespKind::Inv { .. } => {}
                    }
                }
            }
        }
    }

    /// Attempts a u32 load; `None` means retry next tick.
    fn read_u32(&mut self, now: Time, addr: u64, hub: &mut HubPort<'_>) -> Option<u32> {
        match self {
            MemPath::Cached(sc) => sc.load(now, addr, Width::B4, hub).map(|v| v as u32),
            MemPath::Direct {
                pending,
                got,
                next_id,
                ..
            } => {
                let line = addr & !0xF;
                if let Some((l, data)) = got {
                    if *l == line {
                        let o = (addr & 0xF) as usize;
                        return Some(u32::from_le_bytes(data[o..o + 4].try_into().unwrap()));
                    }
                }
                if pending.is_none() {
                    let id = *next_id;
                    *next_id += 1;
                    if hub.load_line(now, id, line) {
                        *pending = Some((id, addr));
                    }
                }
                None
            }
        }
    }

    /// Attempts a u32 store; false means retry next tick.
    fn write_u32(&mut self, now: Time, addr: u64, v: u32, hub: &mut HubPort<'_>) -> bool {
        match self {
            MemPath::Cached(sc) => sc.store(addr, Width::B4, u64::from(v)),
            MemPath::Direct {
                stores_outstanding,
                next_id,
                got,
                ..
            } => {
                let id = *next_id;
                if hub.store(now, id, addr, Width::B4, u64::from(v)) {
                    *next_id += 1;
                    *stores_outstanding += 1;
                    // Keep the local line view coherent for this engine.
                    if let Some((l, data)) = got {
                        if *l == addr & !0xF {
                            let o = (addr & 0xF) as usize;
                            data[o..o + 4].copy_from_slice(&v.to_le_bytes());
                        }
                    }
                    true
                } else {
                    false
                }
            }
        }
    }

    fn stores_pending(&self) -> bool {
        match self {
            MemPath::Cached(sc) => sc.pending_stores() > 0,
            MemPath::Direct {
                stores_outstanding, ..
            } => *stores_outstanding > 0,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DjState {
    Idle,
    /// Linear scan for the minimum-distance unvisited node.
    Scan {
        u: u32,
        best: u32,
        best_d: u32,
    },
    Meta {
        u: u32,
    },
    DistU {
        u: u32,
        off: u32,
        deg: u32,
    },
    Edge {
        e: u32,
        end: u32,
        du: u32,
    },
    EdgeDist {
        e: u32,
        end: u32,
        du: u32,
        dest: u32,
        wt: u32,
    },
    Drain,
}

impl MemPath {
    /// Serializes the path's state. The variant is construction-time
    /// configuration (`use_soft_cache`), so only a matching variant can
    /// be restored into.
    fn save(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        match self {
            MemPath::Cached(sc) => {
                0u8.pack(w);
                sc.save(w);
            }
            MemPath::Direct {
                pending,
                got,
                stores_outstanding,
                next_id,
            } => {
                1u8.pack(w);
                pending.pack(w);
                got.pack(w);
                stores_outstanding.pack(w);
                next_id.pack(w);
            }
        }
    }

    fn load(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        let variant = u8::unpack(r)?;
        match (variant, &mut *self) {
            // UFCS: `SoftCache::load(addr, ...)` (the cache lookup) would
            // shadow the `Snap` method.
            (0, MemPath::Cached(sc)) => Snap::load(sc, r),
            (
                1,
                MemPath::Direct {
                    pending,
                    got,
                    stores_outstanding,
                    next_id,
                },
            ) => {
                *pending = Pack::unpack(r)?;
                *got = Pack::unpack(r)?;
                *stores_outstanding = Pack::unpack(r)?;
                *next_id = Pack::unpack(r)?;
                Ok(())
            }
            _ => Err(duet_sim::SnapError::Corrupt(
                "dijkstra memory-path variant mismatch",
            )),
        }
    }
}

impl duet_sim::Pack for DjState {
    fn pack(&self, w: &mut duet_sim::SnapWriter) {
        match *self {
            DjState::Idle => 0u8.pack(w),
            DjState::Scan { u, best, best_d } => {
                1u8.pack(w);
                u.pack(w);
                best.pack(w);
                best_d.pack(w);
            }
            DjState::Meta { u } => {
                2u8.pack(w);
                u.pack(w);
            }
            DjState::DistU { u, off, deg } => {
                3u8.pack(w);
                u.pack(w);
                off.pack(w);
                deg.pack(w);
            }
            DjState::Edge { e, end, du } => {
                4u8.pack(w);
                e.pack(w);
                end.pack(w);
                du.pack(w);
            }
            DjState::EdgeDist {
                e,
                end,
                du,
                dest,
                wt,
            } => {
                5u8.pack(w);
                e.pack(w);
                end.pack(w);
                du.pack(w);
                dest.pack(w);
                wt.pack(w);
            }
            DjState::Drain => 6u8.pack(w),
        }
    }

    fn unpack(r: &mut duet_sim::SnapReader<'_>) -> Result<Self, duet_sim::SnapError> {
        use duet_sim::Pack;
        Ok(match u8::unpack(r)? {
            0 => DjState::Idle,
            1 => DjState::Scan {
                u: Pack::unpack(r)?,
                best: Pack::unpack(r)?,
                best_d: Pack::unpack(r)?,
            },
            2 => DjState::Meta {
                u: Pack::unpack(r)?,
            },
            3 => DjState::DistU {
                u: Pack::unpack(r)?,
                off: Pack::unpack(r)?,
                deg: Pack::unpack(r)?,
            },
            4 => DjState::Edge {
                e: Pack::unpack(r)?,
                end: Pack::unpack(r)?,
                du: Pack::unpack(r)?,
            },
            5 => DjState::EdgeDist {
                e: Pack::unpack(r)?,
                end: Pack::unpack(r)?,
                du: Pack::unpack(r)?,
                dest: Pack::unpack(r)?,
                wt: Pack::unpack(r)?,
            },
            6 => DjState::Drain,
            _ => return Err(duet_sim::SnapError::Corrupt("invalid DjState discriminant")),
        })
    }
}

/// The Dijkstra engine: the whole kernel runs on the fabric — a pipelined
/// min-scan over the distance array followed by edge relaxation, with the
/// distance array held in the **soft cache** across rounds ("exploit data
/// locality between consecutive calls"). The `visited` set lives in fabric
/// BRAM.
pub struct DijkstraAccel {
    regs: FabricRegFile,
    mem: MemPath,
    layout: DijkstraLayout,
    state: DjState,
    visited: Vec<bool>,
    n: u32,
    rounds: u32,
}

impl DijkstraAccel {
    /// Creates the engine; `use_soft_cache` per variant.
    pub fn new(push_mode: bool, use_soft_cache: bool, layout: DijkstraLayout) -> Self {
        let mut regs = FabricRegFile::new(push_mode);
        regs.set_queue(1);
        DijkstraAccel {
            regs,
            mem: MemPath::new(use_soft_cache),
            layout,
            state: DjState::Idle,
            visited: Vec::new(),
            n: 0,
            rounds: 0,
        }
    }
}

impl SoftAccelerator for DijkstraAccel {
    fn name(&self) -> &str {
        "dijkstra"
    }

    fn save_state(&self, w: &mut duet_sim::SnapWriter) {
        use duet_sim::{Pack, Snap};
        self.regs.save(w);
        self.mem.save(w);
        self.state.pack(w);
        self.visited.pack(w);
        self.n.pack(w);
        self.rounds.pack(w);
    }

    fn load_state(&mut self, r: &mut duet_sim::SnapReader<'_>) -> Result<(), duet_sim::SnapError> {
        use duet_sim::{Pack, Snap};
        self.regs.load(r)?;
        self.mem.load(r)?;
        self.state = Pack::unpack(r)?;
        self.visited = Pack::unpack(r)?;
        self.n = Pack::unpack(r)?;
        self.rounds = Pack::unpack(r)?;
        Ok(())
    }

    fn tick(&mut self, ports: &mut FabricPorts<'_>) {
        let now = ports.now;
        self.regs.tick(now, &mut ports.regs);
        let hub = &mut ports.hubs[0];
        self.mem.pump(now, hub);

        // The HLS engine is pipelined: several dependent micro-steps
        // complete per fabric cycle when their operands hit in the soft
        // cache (II ≈ 1 through the relaxation loop).
        for _ in 0..4 {
            let before = self.state;
            self.step(now, hub);
            if self.state == before {
                break;
            }
        }
        self.regs.tick(now, &mut ports.regs);
    }

    fn netlist(&self) -> NetlistSummary {
        // Calibrated against Table II (dijkstra: 127 MHz, norm. area 1.94,
        // CLB 0.96, BRAM 0.31).
        NetlistSummary {
            name: "dijkstra",
            luts: 6650,
            ffs: 9310,
            bram_kbits: 1280,
            mults: 0,
            logic_levels: 4,
        }
    }

    fn reset(&mut self) {
        self.state = DjState::Idle;
    }
}

impl DijkstraAccel {
    /// One micro-step of the engine.
    fn step(&mut self, now: Time, hub: &mut HubPort<'_>) {
        match self.state {
            DjState::Idle => {
                if let Some(v) = self.regs.pop_write(0) {
                    self.n = v as u32;
                    self.visited = vec![false; self.n as usize];
                    self.rounds = 0;
                    self.state = DjState::Scan {
                        u: 0,
                        best: self.n,
                        best_d: u32::MAX,
                    };
                }
            }
            DjState::Scan { u, best, best_d } => {
                if u == self.n {
                    if best == self.n || self.rounds == self.n {
                        // No reachable unvisited node: the kernel is done
                        // once every buffered store has drained.
                        self.state = DjState::Drain;
                    } else {
                        self.visited[best as usize] = true;
                        self.rounds += 1;
                        self.state = DjState::Meta { u: best };
                    }
                } else if self.visited[u as usize] {
                    self.state = DjState::Scan {
                        u: u + 1,
                        best,
                        best_d,
                    };
                } else {
                    let a = self.layout.dist + u64::from(u) * 4;
                    if let Some(d) = self.mem.read_u32(now, a, hub) {
                        let (best, best_d) = if d < best_d { (u, d) } else { (best, best_d) };
                        self.state = DjState::Scan {
                            u: u + 1,
                            best,
                            best_d,
                        };
                    }
                }
            }
            DjState::Meta { u } => {
                // offsets[u] = off | deg<<32 (two u32 reads share a line).
                let a = self.layout.offsets + u64::from(u) * 8;
                if let Some(off) = self.mem.read_u32(now, a, hub) {
                    if let Some(deg) = self.mem.read_u32(now, a + 4, hub) {
                        self.state = DjState::DistU { u, off, deg };
                    }
                }
            }
            DjState::DistU { u, off, deg } => {
                let a = self.layout.dist + u64::from(u) * 4;
                if let Some(du) = self.mem.read_u32(now, a, hub) {
                    self.state = DjState::Edge {
                        e: off,
                        end: off + deg,
                        du,
                    };
                }
            }
            DjState::Edge { e, end, du } => {
                if e == end {
                    // Next round's scan; the soft cache retains the hot
                    // distance lines between rounds.
                    self.state = DjState::Scan {
                        u: 0,
                        best: self.n,
                        best_d: u32::MAX,
                    };
                } else {
                    let a = self.layout.edges + u64::from(e) * 8;
                    if let Some(dest) = self.mem.read_u32(now, a, hub) {
                        if let Some(wt) = self.mem.read_u32(now, a + 4, hub) {
                            self.state = DjState::EdgeDist {
                                e,
                                end,
                                du,
                                dest,
                                wt,
                            };
                        }
                    }
                    // Prefetch the next edge line (streaming access).
                    if e + 2 < end {
                        let _ =
                            self.mem
                                .read_u32(now, self.layout.edges + u64::from(e + 2) * 8, hub);
                    }
                }
            }
            DjState::EdgeDist {
                e,
                end,
                du,
                dest,
                wt,
            } => {
                let a = self.layout.dist + u64::from(dest) * 4;
                if let Some(dv) = self.mem.read_u32(now, a, hub) {
                    let nd = du.saturating_add(wt);
                    if nd < dv {
                        if self.mem.write_u32(now, a, nd, hub) {
                            self.state = DjState::Edge { e: e + 1, end, du };
                        }
                    } else {
                        self.state = DjState::Edge { e: e + 1, end, du };
                    }
                }
            }
            DjState::Drain => {
                // All relaxation stores must be globally visible before the
                // processor's next min-scan reads the distance array.
                if !self.mem.stores_pending() {
                    self.regs.push_result(1, 1);
                    self.state = DjState::Idle;
                }
            }
        }
        let _ = now;
    }
}

fn install_graph(sys: &mut System, layout: &DijkstraLayout, g: &Graph) {
    for (u, &(off, deg)) in g.offsets.iter().enumerate() {
        let packed = u64::from(off) | (u64::from(deg) << 32);
        sys.poke_u64(layout.offsets + (u as u64) * 8, packed);
    }
    for (e, &(dest, wt)) in g.edges.iter().enumerate() {
        let packed = u64::from(dest) | (u64::from(wt) << 32);
        sys.poke_u64(layout.edges + (e as u64) * 8, packed);
    }
    let v = g.offsets.len() as u64;
    for u in 0..v {
        let d = if u == 0 { 0u32 } else { INF };
        sys.poke_bytes(layout.dist + u * 4, &d.to_le_bytes());
        sys.poke_bytes(layout.visited + u, &[0]);
    }
}

/// Emits the min-scan: finds the unvisited node with minimum distance.
/// Result: `S[5]` = node (or V if none), marks it visited.
fn emit_min_scan_and_mark(a: &mut Asm, layout: &DijkstraLayout, v: u64) {
    let (best_u, best_d, u) = (regs::S[5], regs::S[6], regs::S[7]);
    a.li(best_u, v as i64);
    a.li(best_d, i64::MAX);
    a.li(u, 0);
    a.label("scan");
    // skip visited
    a.li(regs::T[0], layout.visited as i64);
    a.add(regs::T[0], regs::T[0], u);
    a.lbu(regs::T[1], regs::T[0], 0);
    a.bnez(regs::T[1], "scan_next");
    // d = dist[u]
    a.slli(regs::T[0], u, 2);
    a.li(regs::T[1], layout.dist as i64);
    a.add(regs::T[0], regs::T[0], regs::T[1]);
    a.lwu(regs::T[2], regs::T[0], 0);
    a.bgeu(regs::T[2], best_d, "scan_next");
    a.mv(best_d, regs::T[2]);
    a.mv(best_u, u);
    a.label("scan_next");
    a.addi(u, u, 1);
    a.li(regs::T[3], v as i64);
    a.blt(u, regs::T[3], "scan");
    // Nothing reachable left?
    a.li(regs::T[3], v as i64);
    a.beq(best_u, regs::T[3], "finish");
    // visited[best_u] = 1
    a.li(regs::T[0], layout.visited as i64);
    a.add(regs::T[0], regs::T[0], best_u);
    a.li(regs::T[1], 1);
    a.sb(regs::T[1], regs::T[0], 0);
}

/// Runs the Dijkstra benchmark on a `v`-node graph.
pub fn run(variant: BenchVariant, v: u32, avg_deg: u32, seed: u64) -> AppResult {
    let layout = DijkstraLayout::new();
    let g = Graph::generate(v, avg_deg, seed);
    let expected = g.dijkstra_ref();
    let mut sys = System::new(variant.system_config(1, 1, DIJKSTRA_MHZ)).expect("valid config");
    install_graph(&mut sys, &layout, &g);

    let prog = match variant {
        BenchVariant::ProcOnly => {
            let mut a = Asm::new();
            a.label("main");
            let round = regs::S[0];
            a.li(round, 0);
            a.label("outer");
            emit_min_scan_and_mark(&mut a, &layout, u64::from(v));
            // Relax best_u's edges in software.
            let best_u = regs::S[5];
            let (eidx, eend, du) = (regs::S[1], regs::S[2], regs::S[3]);
            a.slli(regs::T[0], best_u, 3);
            a.li(regs::T[1], layout.offsets as i64);
            a.add(regs::T[0], regs::T[0], regs::T[1]);
            a.lwu(eidx, regs::T[0], 0);
            a.lwu(eend, regs::T[0], 4);
            a.add(eend, eend, eidx);
            a.slli(regs::T[0], best_u, 2);
            a.li(regs::T[1], layout.dist as i64);
            a.add(regs::T[0], regs::T[0], regs::T[1]);
            a.lwu(du, regs::T[0], 0);
            a.label("relax");
            a.bgeu(eidx, eend, "relax_done");
            a.slli(regs::T[0], eidx, 3);
            a.li(regs::T[1], layout.edges as i64);
            a.add(regs::T[0], regs::T[0], regs::T[1]);
            a.lwu(regs::T[2], regs::T[0], 0); // dest
            a.lwu(regs::T[3], regs::T[0], 4); // weight
            a.add(regs::T[3], regs::T[3], du); // nd
            a.slli(regs::T[4], regs::T[2], 2);
            a.li(regs::T[5], layout.dist as i64);
            a.add(regs::T[4], regs::T[4], regs::T[5]);
            a.lwu(regs::T[6], regs::T[4], 0); // dv
            a.bgeu(regs::T[3], regs::T[6], "no_update");
            a.sw(regs::T[3], regs::T[4], 0);
            a.label("no_update");
            a.addi(eidx, eidx, 1);
            a.j("relax");
            a.label("relax_done");
            a.addi(round, round, 1);
            a.li(regs::T[0], v as i64);
            a.blt(round, regs::T[0], "outer");
            a.label("finish");
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
        _ => {
            let base = sys.config().mmio_base;
            sys.set_reg_mode(0, RegMode::FpgaBound);
            sys.set_reg_mode(1, RegMode::CpuBound);
            let use_sc = variant == BenchVariant::Duet;
            {
                let a = sys.adapter_mut();
                let mut sw = a.hubs[0].switches();
                sw.fwd_inv = use_sc; // soft cache needs invalidations
                a.hubs[0].set_switches(sw);
            }
            sys.attach_accelerator(Box::new(DijkstraAccel::new(
                variant.push_mode(),
                use_sc,
                layout,
            )));
            // The processor launches the kernel (node count through the
            // FPGA-bound FIFO) and blocks on the completion token; the
            // engine runs scan + relax rounds on the fabric with the
            // distance array resident in the soft cache.
            let mut a = Asm::new();
            a.label("main");
            let (arg, res) = (regs::S[1], regs::S[2]);
            a.li(arg, base as i64);
            a.li(res, (base + 8) as i64);
            a.li(regs::T[0], v as i64);
            a.sd(regs::T[0], arg, 0);
            a.ld(regs::T[1], res, 0); // blocking completion token
            a.fence();
            a.halt();
            a.assemble().unwrap()
        }
    };
    sys.load_program(0, Arc::new(prog), "main");
    if variant == BenchVariant::ProcOnly {
        sys.warm_shared(layout.offsets, u64::from(v) * 8, 0);
        sys.warm_shared(layout.edges, g.edges.len() as u64 * 8, 0);
        sys.warm_shared(layout.dist, u64::from(v) * 4, 0);
        sys.warm_shared(layout.visited, u64::from(v), 0);
    }
    let runtime = sys
        .run_until_halt(Time::from_us(60_000))
        .unwrap_or_else(|e| panic!("{e}"));
    sys.quiesce(Time::from_us(61_000))
        .unwrap_or_else(|e| panic!("{e}"));
    let correct = (0..v as u64).all(|u| sys.peek_u32(layout.dist + u * 4) == expected[u as usize]);
    AppResult {
        name: "dijkstra".into(),
        variant,
        processors: 1,
        memory_hubs: 1,
        fpga_mhz: DIJKSTRA_MHZ,
        runtime,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_textbook_property() {
        let g = Graph::generate(24, 3, 5);
        let d = g.dijkstra_ref();
        assert_eq!(d[0], 0);
        // Triangle inequality over every edge.
        for (u, &(off, deg)) in g.offsets.iter().enumerate() {
            for e in off..off + deg {
                let (w, wt) = g.edges[e as usize];
                if d[u] != INF {
                    assert!(d[w as usize] <= d[u].saturating_add(wt));
                }
            }
        }
    }

    #[test]
    fn baseline_matches_reference() {
        let r = run(BenchVariant::ProcOnly, 16, 2, 9);
        assert!(r.correct);
    }

    #[test]
    fn duet_with_soft_cache_matches_reference() {
        let r = run(BenchVariant::Duet, 16, 2, 9);
        assert!(r.correct, "soft-cache relaxation corrupted distances");
    }

    #[test]
    fn fpsoc_matches_and_is_slower() {
        let duet = run(BenchVariant::Duet, 16, 2, 13);
        let fpsoc = run(BenchVariant::Fpsoc, 16, 2, 13);
        assert!(duet.correct && fpsoc.correct);
        assert!(
            duet.runtime < fpsoc.runtime,
            "duet {} vs fpsoc {}",
            duet.runtime,
            fpsoc.runtime
        );
    }
}
