//! Synchronization primitives written in kernel IR: test-and-set spinlock,
//! MCS queue lock (used by the paper's PDES baseline, ref. \[35\]), and a
//! sense-reversing centralized barrier.
//!
//! Each emitter inlines the primitive at the current assembly position with
//! uniquified labels, clobbering only the registers passed in.

use duet_cpu::asm::Asm;
use duet_cpu::isa::Reg;

/// Emits a test-and-set spinlock acquire with core-id-keyed backoff.
///
/// The backoff is essential: in a deterministic simulator (and on real
/// machines with synchronized clocks), symmetric spin loops phase-lock so
/// one contender perpetually samples the lock while it is held. Seeding
/// the backoff period with the hart id breaks the symmetry.
///
/// Clobbers `t0`. `lock` holds the lock address.
pub fn spin_acquire(a: &mut Asm, id: &str, lock: Reg, t0: Reg) {
    let retry = format!("spin_acq_retry_{id}");
    let backoff = format!("spin_acq_backoff_{id}");
    let done = format!("spin_acq_done_{id}");
    a.label(&retry);
    a.li(t0, 1);
    a.amoswap(t0, lock, t0);
    a.beqz(t0, &done);
    // Back off for 9 + 8*coreid + (cycle & 31) iterations before retrying.
    // The cycle-counter term decorrelates retry phases even in a fully
    // deterministic system; the coreid term breaks exact symmetry.
    a.rdcycle(t0);
    a.andi(t0, t0, 31);
    a.addi(t0, t0, 9);
    a.label(&backoff);
    a.addi(t0, t0, -1);
    a.bnez(t0, &backoff);
    a.coreid(t0);
    a.slli(t0, t0, 3);
    a.bnez(t0, &format!("spin_acq_bk2_{id}"));
    a.j(&retry);
    a.label(&format!("spin_acq_bk2_{id}"));
    a.addi(t0, t0, -1);
    a.bnez(t0, &format!("spin_acq_bk2_{id}"));
    a.j(&retry);
    a.label(&done);
}

/// Emits a spinlock release (fence + zero store).
pub fn spin_release(a: &mut Asm, lock: Reg) {
    a.fence();
    a.sd(Reg::ZERO, lock, 0);
    a.fence();
}

/// Byte offsets within an MCS queue node.
pub mod mcs_node {
    /// Pointer to the successor node (0 = none).
    pub const NEXT: i64 = 0;
    /// Spin flag (1 = locked, wait).
    pub const LOCKED: i64 = 8;
    /// Size of a node, padded to a cacheline to avoid false sharing.
    pub const SIZE: u64 = 16;
}

/// Emits an MCS lock acquire (Mellor-Crummey & Scott, the paper's \[35\]).
///
/// `lock` holds the address of the tail pointer; `node` holds this core's
/// queue-node address. Clobbers `t0`, `t1`.
pub fn mcs_acquire(a: &mut Asm, id: &str, lock: Reg, node: Reg, t0: Reg, t1: Reg) {
    let spin = format!("mcs_acq_spin_{id}");
    let done = format!("mcs_acq_done_{id}");
    // node->next = 0; node->locked = 1 (set before linking).
    a.sd(Reg::ZERO, node, mcs_node::NEXT);
    a.li(t0, 1);
    a.sd(t0, node, mcs_node::LOCKED);
    a.fence();
    // pred = swap(tail, node)
    a.amoswap(t0, lock, node);
    a.beqz(t0, &done);
    // pred->next = node; spin on node->locked.
    a.sd(node, t0, mcs_node::NEXT);
    a.fence();
    a.label(&spin);
    a.ld(t1, node, mcs_node::LOCKED);
    a.bnez(t1, &spin);
    a.label(&done);
}

/// Emits an MCS lock release. Clobbers `t0`, `t1`.
pub fn mcs_release(a: &mut Asm, id: &str, lock: Reg, node: Reg, t0: Reg, t1: Reg) {
    let wait = format!("mcs_rel_wait_{id}");
    let done = format!("mcs_rel_done_{id}");
    let hand = format!("mcs_rel_hand_{id}");
    a.fence();
    a.ld(t0, node, mcs_node::NEXT);
    a.bnez(t0, &hand);
    // No known successor: try CAS(tail, node, 0).
    a.cas(t1, lock, node, Reg::ZERO);
    a.beq(t1, node, &done);
    // A successor is linking; wait for it.
    a.label(&wait);
    a.ld(t0, node, mcs_node::NEXT);
    a.beqz(t0, &wait);
    a.label(&hand);
    a.sd(Reg::ZERO, t0, mcs_node::LOCKED);
    a.fence();
    a.label(&done);
}

/// Memory layout of a sense-reversing barrier.
pub mod barrier_mem {
    /// Arrival counter.
    pub const COUNT: i64 = 0;
    /// Global sense flag.
    pub const SENSE: i64 = 8;
    /// Size in bytes.
    pub const SIZE: u64 = 16;
}

/// Emits a sense-reversing centralized barrier for `n` cores.
///
/// `bar` holds the barrier address; `local_sense` is a callee-maintained
/// register that must start at 0 and is flipped by each crossing. Clobbers
/// `t0`, `t1`.
pub fn barrier(a: &mut Asm, id: &str, bar: Reg, local_sense: Reg, n: u64, t0: Reg, t1: Reg) {
    let spin = format!("barrier_spin_{id}");
    let done = format!("barrier_done_{id}");
    // local_sense = !local_sense
    a.xori(local_sense, local_sense, 1);
    // arrivals = amoadd(count, 1) + 1
    a.li(t0, 1);
    a.amoadd(t0, bar, t0);
    a.addi(t0, t0, 1);
    a.li(t1, n as i64);
    a.bne(t0, t1, &spin);
    // Last arrival: reset the counter, flip the global sense.
    a.sd(Reg::ZERO, bar, barrier_mem::COUNT);
    a.fence();
    a.sd(local_sense, bar, barrier_mem::SENSE);
    a.fence();
    a.j(&done);
    a.label(&spin);
    a.ld(t1, bar, barrier_mem::SENSE);
    a.bne(t1, local_sense, &spin);
    a.label(&done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_cpu::isa::regs;
    use duet_sim::Time;
    use duet_system::{System, SystemConfig};
    use std::sync::Arc;

    /// N cores increment a shared counter K times each under a lock; the
    /// result must be exact.
    fn locked_counter_program(kind: &str, n_iters: i64) -> Arc<duet_cpu::Program> {
        let lock_addr = 0x8000i64;
        let counter_addr = 0x8100i64;
        let nodes_base = 0x8200i64;
        let mut a = Asm::new();
        a.label("main");
        let lock = regs::S[0];
        let node = regs::S[1];
        let counter = regs::S[2];
        let i = regs::S[3];
        a.li(lock, lock_addr);
        a.li(counter, counter_addr);
        // node = nodes_base + coreid * 64 (cacheline-spaced)
        a.coreid(regs::T[0]);
        a.slli(regs::T[0], regs::T[0], 6);
        a.li(node, nodes_base);
        a.add(node, node, regs::T[0]);
        a.li(i, 0);
        a.label("loop");
        match kind {
            "spin" => spin_acquire(&mut a, "l", lock, regs::T[0]),
            _ => mcs_acquire(&mut a, "l", lock, node, regs::T[0], regs::T[1]),
        }
        a.ld(regs::T[2], counter, 0);
        a.addi(regs::T[2], regs::T[2], 1);
        a.sd(regs::T[2], counter, 0);
        match kind {
            "spin" => spin_release(&mut a, lock),
            _ => mcs_release(&mut a, "l", lock, node, regs::T[0], regs::T[1]),
        }
        a.addi(i, i, 1);
        a.li(regs::T[3], n_iters);
        a.blt(i, regs::T[3], "loop");
        a.halt();
        Arc::new(a.assemble().unwrap())
    }

    fn run_counter(kind: &str, cores: usize, iters: i64) -> u64 {
        let mut sys = System::new(SystemConfig::proc_only(cores)).expect("valid config");
        let prog = locked_counter_program(kind, iters);
        for c in 0..cores {
            sys.load_program(c, prog.clone(), "main");
        }
        sys.run_until_halt(Time::from_us(20_000))
            .unwrap_or_else(|e| panic!("{e}"));
        sys.quiesce(Time::from_us(21_000))
            .unwrap_or_else(|e| panic!("{e}"));
        sys.peek_u64(0x8100)
    }

    #[test]
    fn spinlock_mutual_exclusion() {
        assert_eq!(run_counter("spin", 3, 20), 60);
    }

    #[test]
    fn mcs_mutual_exclusion() {
        assert_eq!(run_counter("mcs", 3, 20), 60);
    }

    #[test]
    fn mcs_single_core_fast_path() {
        assert_eq!(run_counter("mcs", 1, 10), 10);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // Each core writes its id in phase 1, then in phase 2 sums all
        // phase-1 values. Without the barrier some cores would read zeros.
        let cores = 4u64;
        let bar_addr = 0x8800i64;
        let slots = 0x8900i64;
        let out = 0x8A00i64;
        let mut a = Asm::new();
        a.label("main");
        let bar = regs::S[0];
        let sense = regs::S[1];
        a.li(bar, bar_addr);
        a.li(sense, 0);
        a.coreid(regs::T[2]);
        // slots[coreid] = coreid + 1
        a.slli(regs::T[3], regs::T[2], 3);
        a.li(regs::T[4], slots);
        a.add(regs::T[4], regs::T[4], regs::T[3]);
        a.addi(regs::T[5], regs::T[2], 1);
        a.sd(regs::T[5], regs::T[4], 0);
        a.fence();
        barrier(&mut a, "b1", bar, sense, cores, regs::T[0], regs::T[1]);
        // sum all slots
        a.li(regs::T[4], slots);
        a.li(regs::T[5], 0);
        a.li(regs::T[6], 0);
        a.label("sum");
        a.ld(regs::T[3], regs::T[4], 0);
        a.add(regs::T[5], regs::T[5], regs::T[3]);
        a.addi(regs::T[4], regs::T[4], 8);
        a.addi(regs::T[6], regs::T[6], 1);
        a.li(regs::T[3], cores as i64);
        a.blt(regs::T[6], regs::T[3], "sum");
        // out[coreid] = sum
        a.coreid(regs::T[2]);
        a.slli(regs::T[3], regs::T[2], 3);
        a.li(regs::T[4], out);
        a.add(regs::T[4], regs::T[4], regs::T[3]);
        a.sd(regs::T[5], regs::T[4], 0);
        a.fence();
        a.halt();
        let prog = Arc::new(a.assemble().unwrap());
        let mut sys = System::new(SystemConfig::proc_only(cores as usize)).expect("valid config");
        for c in 0..cores as usize {
            sys.load_program(c, prog.clone(), "main");
        }
        sys.run_until_halt(Time::from_us(20_000))
            .unwrap_or_else(|e| panic!("{e}"));
        sys.quiesce(Time::from_us(21_000))
            .unwrap_or_else(|e| panic!("{e}"));
        let expect = (1..=cores).sum::<u64>();
        for c in 0..cores {
            assert_eq!(
                sys.peek_u64((out as u64) + c * 8),
                expect,
                "core {c} saw a partial phase-1 state"
            );
        }
    }
}
