//! Scoreboards derived from a captured trace: per-message-class (virtual
//! network) inject→eject latency histograms and per-line MESI transition
//! counts.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use crate::{mesi, unpack_mesi, unpack_noc, EventKind, TraceEvent, UnknownEventKind};

/// Number of message classes (the three coherence virtual networks).
pub const CLASS_COUNT: usize = 3;

const CLASS_LABELS: [&str; CLASS_COUNT] = ["req", "fwd", "resp"];

/// A power-of-two latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes sub-ns samples).
#[derive(Clone, Debug, Default)]
pub struct LatencyHistogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    total_ps: u64,
    max_ps: u64,
}

impl LatencyHistogram {
    /// Records one latency sample (picoseconds).
    pub fn record(&mut self, latency_ps: u64) {
        let ns = latency_ps / 1000;
        let bucket = if ns <= 1 { 0 } else { 63 - ns.leading_zeros() };
        *self.buckets.entry(bucket).or_insert(0) += 1;
        self.count += 1;
        self.total_ps += latency_ps;
        self.max_ps = self.max_ps.max(latency_ps);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in picoseconds (0 when empty).
    pub fn mean_ps(&self) -> u64 {
        self.total_ps.checked_div(self.count).unwrap_or(0)
    }

    /// Largest sample in picoseconds.
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }

    /// `(bucket_floor_ns, count)` pairs, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets.iter().map(|(b, c)| (1u64 << b, *c)).collect()
    }
}

/// Protocol scoreboards computed from a trace (see
/// [`Scoreboard::from_events`]).
#[derive(Clone, Debug, Default)]
pub struct Scoreboard {
    /// Inject→eject latency per virtual network (index = vnet).
    pub noc_latency: [LatencyHistogram; CLASS_COUNT],
    /// MESI transition counts keyed by `(old, new)` encoded state.
    pub mesi_transitions: BTreeMap<(u8, u8), u64>,
    /// Per-line transition counts (line address → transitions observed).
    pub mesi_lines: BTreeMap<u64, u64>,
    /// Injections never matched by an ejection (still in flight at the end
    /// of the run, or whose endpoints fell out of the ring).
    pub unmatched_injects: u64,
    /// Faults injected by a `duet-verify` `FaultPlan`.
    pub faults_injected: u64,
    /// Accelerator fences performed by the adapter watchdog.
    pub fences: u64,
    /// Protocol violations recorded by the runtime checkers.
    pub checker_violations: u64,
}

impl Scoreboard {
    /// Replays the event stream: matches `NocInject`/`NocEject` pairs by
    /// transaction id into per-vnet latency histograms and accumulates
    /// directory transition counts.
    ///
    /// # Errors
    ///
    /// [`UnknownEventKind`] on a discriminant byte that decodes to no
    /// event kind — a replayed stream with corrupt bytes must fail
    /// loudly, not skip samples silently. (Streams captured in-process
    /// can only contain valid kinds.)
    pub fn from_events(events: &[TraceEvent]) -> Result<Self, UnknownEventKind> {
        let mut sb = Scoreboard::default();
        let mut in_flight: BTreeMap<u64, (u64, usize)> = BTreeMap::new();
        for ev in events {
            match EventKind::try_from_u8(ev.kind)? {
                EventKind::NocInject => {
                    let (_, _, vnet, _) = unpack_noc(ev.b);
                    in_flight.insert(ev.a, (ev.ts_ps, vnet.min(CLASS_COUNT - 1)));
                }
                EventKind::NocEject => {
                    if let Some((t0, vnet)) = in_flight.remove(&ev.a) {
                        sb.noc_latency[vnet].record(ev.ts_ps.saturating_sub(t0));
                    }
                }
                EventKind::MesiTransition => {
                    let (old, new, _) = unpack_mesi(ev.b);
                    *sb.mesi_transitions.entry((old, new)).or_insert(0) += 1;
                    *sb.mesi_lines.entry(ev.a).or_insert(0) += 1;
                }
                EventKind::FaultInject => sb.faults_injected += 1,
                EventKind::Fence => sb.fences += 1,
                EventKind::CheckerViolation => sb.checker_violations += 1,
                _ => {}
            }
        }
        sb.unmatched_injects = in_flight.len() as u64;
        Ok(sb)
    }

    /// Renders the scoreboards as a human-readable report.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("== NoC latency (inject→eject) ==\n");
        for (vnet, hist) in self.noc_latency.iter().enumerate() {
            if hist.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<5} n={:<8} mean={:.1}ns max={:.1}ns\n",
                CLASS_LABELS[vnet],
                hist.count(),
                hist.mean_ps() as f64 / 1000.0,
                hist.max_ps() as f64 / 1000.0
            ));
            for (floor_ns, count) in hist.buckets() {
                out.push_str(&format!("      [{floor_ns:>6}ns..): {count}\n"));
            }
        }
        if self.unmatched_injects > 0 {
            out.push_str(&format!(
                "      ({} injections unmatched)\n",
                self.unmatched_injects
            ));
        }
        out.push_str("== MESI transitions ==\n");
        for ((old, new), count) in &self.mesi_transitions {
            out.push_str(&format!(
                "{:>4} → {:<4} {count}\n",
                mesi::label(*old),
                mesi::label(*new)
            ));
        }
        if let Some((line, n)) = self
            .mesi_lines
            .iter()
            .max_by_key(|(line, n)| (**n, u64::MAX - **line))
        {
            out.push_str(&format!(
                "{} lines touched; hottest line {line:#x} with {n} transitions\n",
                self.mesi_lines.len(),
            ));
        }
        if self.faults_injected + self.fences + self.checker_violations > 0 {
            out.push_str("== Verification ==\n");
            out.push_str(&format!(
                "faults_injected={} fences={} checker_violations={}\n",
                self.faults_injected, self.fences, self.checker_violations
            ));
        }
        out
    }

    /// Writes [`report`](Scoreboard::report) to `path`.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error, annotated with the path.
    pub fn write_report<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let path = path.as_ref();
        let annotate = |e: io::Error| {
            io::Error::new(
                e.kind(),
                format!("writing scoreboard to {}: {e}", path.display()),
            )
        };
        let mut f = std::fs::File::create(path).map_err(annotate)?;
        f.write_all(self.report().as_bytes()).map_err(annotate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_mesi, pack_noc, EventKind, TraceEvent};

    fn ev(ts: u64, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            comp: 0,
            kind: kind as u8,
            a,
            b,
        }
    }

    #[test]
    fn latency_histogram_buckets_by_power_of_two() {
        let mut h = LatencyHistogram::default();
        h.record(1_000); // 1 ns -> bucket 0
        h.record(3_000); // 3 ns -> bucket [2ns..)
        h.record(9_000); // 9 ns -> bucket [8ns..)
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_ps(), 4_333);
        assert_eq!(h.max_ps(), 9_000);
        assert_eq!(h.buckets(), vec![(1, 1), (2, 1), (8, 1)]);
    }

    #[test]
    fn scoreboard_matches_inject_eject_by_txn_id() {
        let events = vec![
            ev(1_000, EventKind::NocInject, 1, pack_noc(0, 1, 0, 1)),
            ev(2_000, EventKind::NocInject, 2, pack_noc(1, 0, 2, 3)),
            ev(5_000, EventKind::NocEject, 1, pack_noc(0, 1, 0, 1)),
            ev(9_000, EventKind::NocEject, 2, pack_noc(1, 0, 2, 3)),
            ev(9_500, EventKind::NocInject, 3, pack_noc(0, 1, 1, 1)),
        ];
        let sb = Scoreboard::from_events(&events).unwrap();
        assert_eq!(sb.noc_latency[0].count(), 1);
        assert_eq!(sb.noc_latency[0].mean_ps(), 4_000);
        assert_eq!(sb.noc_latency[2].count(), 1);
        assert_eq!(sb.noc_latency[2].mean_ps(), 7_000);
        assert_eq!(sb.unmatched_injects, 1);
        let report = sb.report();
        assert!(report.contains("req"));
        assert!(report.contains("resp"));
        assert!(report.contains("1 injections unmatched"));
    }

    #[test]
    fn scoreboard_counts_mesi_transitions_per_line() {
        let events = vec![
            ev(1, EventKind::MesiTransition, 0x40, pack_mesi(0, 2, 1)),
            ev(2, EventKind::MesiTransition, 0x40, pack_mesi(2, 1, 2)),
            ev(3, EventKind::MesiTransition, 0x80, pack_mesi(0, 1, 1)),
        ];
        let sb = Scoreboard::from_events(&events).unwrap();
        assert_eq!(sb.mesi_transitions.get(&(0, 2)), Some(&1));
        assert_eq!(sb.mesi_transitions.get(&(2, 1)), Some(&1));
        assert_eq!(sb.mesi_lines.get(&0x40), Some(&2));
        assert!(sb.report().contains("hottest line 0x40"));
    }
}
