//! The unified metrics namespace.
//!
//! Counters in the simulator historically lived in several disconnected
//! places: `RunStats` on the system, per-link push/pop/reject counters,
//! per-component stats structs, and the process-wide throughput atomics.
//! [`MetricsRegistry`] subsumes them into one `name → value` map with
//! deterministic (sorted) iteration, so reports and regression diffs are
//! stable across runs and edge-skip modes.

use std::collections::BTreeMap;
use std::fmt;

/// A sorted, deterministically-iterated `name → u64` metrics namespace.
///
/// Names are dot-separated paths (`run.fast_edges`,
/// `link.mesh.n3.west.req.pushes`, `dir.n0.gets`); insertion order never
/// matters because the backing map is a `BTreeMap`.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    map: BTreeMap<String, u64>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Sets `name` to `value` (overwriting).
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.map.insert(name.into(), value);
    }

    /// Adds `value` to `name` (starting from zero).
    pub fn add(&mut self, name: impl Into<String>, value: u64) {
        *self.map.entry(name.into()).or_insert(0) += value;
    }

    /// Reads a metric.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.map.get(name).copied()
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All metrics under a dotted prefix (`prefix.`), sorted.
    pub fn with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, u64)> {
        self.iter()
            .filter(move |(k, _)| k.starts_with(prefix) && k[prefix.len()..].starts_with('.'))
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_is_sorted_regardless_of_insertion_order() {
        let mut r = MetricsRegistry::new();
        r.set("z.last", 1);
        r.set("a.first", 2);
        r.set("m.mid", 3);
        let keys: Vec<&str> = r.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn add_accumulates_and_prefix_filters() {
        let mut r = MetricsRegistry::new();
        r.add("link.a.pushes", 2);
        r.add("link.a.pushes", 3);
        r.set("link.b.pops", 1);
        r.set("linkage.unrelated", 9);
        assert_eq!(r.get("link.a.pushes"), Some(5));
        let under: Vec<&str> = r.with_prefix("link").map(|(k, _)| k).collect();
        assert_eq!(under, vec!["link.a.pushes", "link.b.pops"]);
    }

    #[test]
    fn display_renders_one_line_per_metric() {
        let mut r = MetricsRegistry::new();
        r.set("run.fast_edges", 10);
        assert_eq!(r.to_string(), "run.fast_edges = 10\n");
    }
}
