#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]
//! # duet-trace
//!
//! A zero-cost-when-off tracing and metrics subsystem for the Duet
//! simulator: the observability counterpart to inspecting RTL waveforms on
//! the real hardware.
//!
//! The design centers on three pieces:
//!
//! * **Capture** — a per-run [`TraceSession`] owns a preallocated ring
//!   buffer of compact binary [`TraceEvent`]s. Components hold cheap
//!   [`Tracer`] handles (shared buffer + cached event mask + pre-bound
//!   component id); when tracing is disabled the handle holds `None` and
//!   every [`Tracer::emit`] is a single branch. Instrumentation is
//!   strictly read-only with respect to simulator state, so fingerprints
//!   are bit-identical with tracing on or off.
//! * **Export** — [`export::chrome_trace`] renders the buffer as Chrome
//!   trace-event JSON (loadable in `chrome://tracing` / Perfetto, one
//!   track per component, flow arrows following each NoC transaction id
//!   across hops) and [`export::text_log`] as a plain-text event log.
//! * **Derived scoreboards** — [`scoreboard::Scoreboard`] computes
//!   per-message-class inject→eject latency histograms and per-line MESI
//!   transition counts from the captured events, and [`MetricsRegistry`]
//!   unifies every counter namespace into one sorted, deterministically
//!   iterated map.
//!
//! This crate deliberately depends on nothing (timestamps are raw
//! picosecond `u64`s) so every layer of the stack can instrument itself
//! without dependency cycles.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

pub mod export;
pub mod registry;
pub mod scoreboard;

pub use registry::MetricsRegistry;
pub use scoreboard::{LatencyHistogram, Scoreboard};

/// Locks a trace ring, recovering from poisoning: a panic in some other
/// thread mid-`push` can at worst lose that one event — instrumentation
/// must never turn one panic into a cascade.
fn lock_ring(ring: &Mutex<TraceBuffer>) -> MutexGuard<'_, TraceBuffer> {
    ring.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A byte that is not a valid [`EventKind`] discriminant, found while
/// decoding a persisted or replayed event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnknownEventKind(pub u8);

impl std::fmt::Display for UnknownEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown trace event kind {:#04x}", self.0)
    }
}

impl std::error::Error for UnknownEventKind {}

/// What happened, encoded as a compact discriminant. Each kind maps to one
/// bit of an event mask (see [`EventKind::bit`]), so a [`TraceConfig`] can
/// select subsystems individually.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A fast-clock edge executed (`a` = fast edge count so far).
    EdgeFast = 0,
    /// A slow-clock edge executed (`a` = slow edge count so far).
    EdgeSlow = 1,
    /// Event-horizon jump over dead edges (`a` = fast edges skipped,
    /// `b` = slow edges skipped).
    HorizonSkip = 2,
    /// NoC message injected (`a` = transaction id, `b` = packed
    /// src/dst/vnet/flits — see [`pack_noc`]).
    NocInject = 3,
    /// NoC message forwarded one hop (`a` = transaction id, `b` = packed
    /// node/port/vnet — see [`pack_hop`]).
    NocRoute = 4,
    /// NoC message delivered at its destination's local port (`a` =
    /// transaction id, `b` = packed src/dst/vnet/flits).
    NocEject = 5,
    /// MESI directory state transition (`a` = line address, `b` = packed
    /// old/new/peer — see [`pack_mesi`]).
    MesiTransition = 6,
    /// Private-cache MSHR allocated (`a` = line address, `b` = MSHRs now
    /// in use).
    MshrAlloc = 7,
    /// Private-cache MSHR retired on fill completion (`a` = line address,
    /// `b` = MSHRs still in use).
    MshrRetire = 8,
    /// Dirty line written back (`a` = line address; `b` = 0 from a private
    /// cache's PutM, 1 when a directory commits WBData to backing memory).
    Writeback = 9,
    /// Memory Hub consumed a fabric request from the request CDC FIFO
    /// (`a` = fabric request id, `b` = address).
    AdapterReqPop = 10,
    /// Memory Hub queued a response into the response CDC FIFO (`a` =
    /// fabric request id, `b` = response kind discriminant).
    AdapterRespPush = 11,
    /// Control Hub pushed a soft-register event toward the fabric (`a` =
    /// register index, `b` = value or transaction id).
    AdapterRegDown = 12,
    /// Control Hub consumed a fabric soft-register event (`a` = register
    /// index, `b` = value or transaction id).
    AdapterRegUp = 13,
    /// Fabric issued a memory request into a hub's CDC FIFO (`a` = fabric
    /// request id, `b` = address).
    FabricReq = 14,
    /// Fabric popped a memory response out of a hub's CDC FIFO (`a` =
    /// fabric request id, `b` = response kind discriminant).
    FabricResp = 15,
    /// Accelerator went from idle to busy (observed at a slow edge).
    AccelStart = 16,
    /// Accelerator is busy but backpressured: a hub request FIFO it may
    /// need is full this slow edge (`a` = hub index).
    AccelStall = 17,
    /// Accelerator went from busy back to idle.
    AccelDone = 18,
    /// Free-form user marker (`a`/`b` caller-defined).
    Marker = 19,
    /// Fault injected by a `duet-verify` `FaultPlan` (`a` = spec index,
    /// `b` = fault-kind discriminant as rendered by the plan).
    FaultInject = 20,
    /// Adapter watchdog fenced a non-progressing accelerator (`a` = hub
    /// count deactivated, `b` = busy duration in picoseconds).
    Fence = 21,
    /// A runtime checker recorded a protocol violation (`a` = running
    /// violation count, `b` = checker id: 0 = MESI, 1 = NoC order,
    /// 2 = adapter invariant).
    CheckerViolation = 22,
}

/// Number of event kinds (mask width).
pub const KIND_COUNT: usize = 23;

const KIND_TABLE: [EventKind; KIND_COUNT] = [
    EventKind::EdgeFast,
    EventKind::EdgeSlow,
    EventKind::HorizonSkip,
    EventKind::NocInject,
    EventKind::NocRoute,
    EventKind::NocEject,
    EventKind::MesiTransition,
    EventKind::MshrAlloc,
    EventKind::MshrRetire,
    EventKind::Writeback,
    EventKind::AdapterReqPop,
    EventKind::AdapterRespPush,
    EventKind::AdapterRegDown,
    EventKind::AdapterRegUp,
    EventKind::FabricReq,
    EventKind::FabricResp,
    EventKind::AccelStart,
    EventKind::AccelStall,
    EventKind::AccelDone,
    EventKind::Marker,
    EventKind::FaultInject,
    EventKind::Fence,
    EventKind::CheckerViolation,
];

impl EventKind {
    /// The mask bit selecting this kind.
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Decodes a kind from its discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        KIND_TABLE.get(v as usize).copied()
    }

    /// Decodes a kind from its discriminant, with a typed error for
    /// replay/decode paths that must not silently skip corrupt bytes.
    pub fn try_from_u8(v: u8) -> Result<EventKind, UnknownEventKind> {
        Self::from_u8(v).ok_or(UnknownEventKind(v))
    }

    /// Short lowercase label (used by both exporters).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::EdgeFast => "edge.fast",
            EventKind::EdgeSlow => "edge.slow",
            EventKind::HorizonSkip => "edge.skip",
            EventKind::NocInject => "noc.inject",
            EventKind::NocRoute => "noc.route",
            EventKind::NocEject => "noc.eject",
            EventKind::MesiTransition => "mesi.transition",
            EventKind::MshrAlloc => "mshr.alloc",
            EventKind::MshrRetire => "mshr.retire",
            EventKind::Writeback => "writeback",
            EventKind::AdapterReqPop => "adapter.req_pop",
            EventKind::AdapterRespPush => "adapter.resp_push",
            EventKind::AdapterRegDown => "adapter.reg_down",
            EventKind::AdapterRegUp => "adapter.reg_up",
            EventKind::FabricReq => "fabric.req",
            EventKind::FabricResp => "fabric.resp",
            EventKind::AccelStart => "accel.start",
            EventKind::AccelStall => "accel.stall",
            EventKind::AccelDone => "accel.done",
            EventKind::Marker => "marker",
            EventKind::FaultInject => "verify.fault",
            EventKind::Fence => "verify.fence",
            EventKind::CheckerViolation => "verify.violation",
        }
    }
}

/// Event-mask presets for [`TraceConfig::mask`].
pub mod masks {
    use super::EventKind;

    /// Clock-edge execution and horizon skips.
    pub const EDGES: u32 =
        EventKind::EdgeFast.bit() | EventKind::EdgeSlow.bit() | EventKind::HorizonSkip.bit();
    /// NoC inject/route/eject.
    pub const NOC: u32 =
        EventKind::NocInject.bit() | EventKind::NocRoute.bit() | EventKind::NocEject.bit();
    /// Coherence: MESI transitions, MSHR lifecycle, writebacks.
    pub const MEM: u32 = EventKind::MesiTransition.bit()
        | EventKind::MshrAlloc.bit()
        | EventKind::MshrRetire.bit()
        | EventKind::Writeback.bit();
    /// Adapter FIFO/CDC crossings (hub side).
    pub const ADAPTER: u32 = EventKind::AdapterReqPop.bit()
        | EventKind::AdapterRespPush.bit()
        | EventKind::AdapterRegDown.bit()
        | EventKind::AdapterRegUp.bit();
    /// Fabric-side CDC crossings and accelerator start/stall/done.
    pub const FABRIC: u32 = EventKind::FabricReq.bit()
        | EventKind::FabricResp.bit()
        | EventKind::AccelStart.bit()
        | EventKind::AccelStall.bit()
        | EventKind::AccelDone.bit();
    /// Fault injection, fencing, and checker verdicts.
    pub const VERIFY: u32 =
        EventKind::FaultInject.bit() | EventKind::Fence.bit() | EventKind::CheckerViolation.bit();
    /// Everything.
    pub const ALL: u32 = (1u32 << super::KIND_COUNT) - 1;
}

/// One captured event: 32 bytes, fixed layout, no allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time, picoseconds.
    pub ts_ps: u64,
    /// Component id (index into [`TraceSession::component_names`]).
    pub comp: u16,
    /// Event kind discriminant (see [`EventKind`]).
    pub kind: u8,
    /// First payload word (meaning per [`EventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// Packs NoC message coordinates into one payload word:
/// `src(16) | dst(16) | vnet(8) | flits(16)`.
pub fn pack_noc(src: usize, dst: usize, vnet: usize, flits: u32) -> u64 {
    (src as u64 & 0xFFFF)
        | ((dst as u64 & 0xFFFF) << 16)
        | ((vnet as u64 & 0xFF) << 32)
        | ((u64::from(flits) & 0xFFFF) << 40)
}

/// Unpacks [`pack_noc`]: `(src, dst, vnet, flits)`.
pub fn unpack_noc(b: u64) -> (usize, usize, usize, u32) {
    (
        (b & 0xFFFF) as usize,
        ((b >> 16) & 0xFFFF) as usize,
        ((b >> 32) & 0xFF) as usize,
        ((b >> 40) & 0xFFFF) as u32,
    )
}

/// Packs one routing hop: `node(16) | out_port(8) | vnet(8)`.
pub fn pack_hop(node: usize, out_port: usize, vnet: usize) -> u64 {
    (node as u64 & 0xFFFF) | ((out_port as u64 & 0xFF) << 16) | ((vnet as u64 & 0xFF) << 24)
}

/// Unpacks [`pack_hop`]: `(node, out_port, vnet)`.
pub fn unpack_hop(b: u64) -> (usize, usize, usize) {
    (
        (b & 0xFFFF) as usize,
        ((b >> 16) & 0xFF) as usize,
        ((b >> 24) & 0xFF) as usize,
    )
}

/// MESI directory states as trace encodings.
pub mod mesi {
    /// Invalid — no cached copies.
    pub const I: u8 = 0;
    /// Shared.
    pub const S: u8 = 1;
    /// Exclusive-or-Modified (the directory does not distinguish).
    pub const EM: u8 = 2;

    /// Label for an encoded state.
    pub fn label(s: u8) -> &'static str {
        match s {
            I => "I",
            S => "S",
            EM => "E/M",
            _ => "?",
        }
    }
}

/// Packs a directory transition: `old(8) | new(8) | peer(16)`.
pub fn pack_mesi(old: u8, new: u8, peer: usize) -> u64 {
    u64::from(old) | (u64::from(new) << 8) | ((peer as u64 & 0xFFFF) << 16)
}

/// Unpacks [`pack_mesi`]: `(old, new, peer)`.
pub fn unpack_mesi(b: u64) -> (u8, u8, usize) {
    (
        (b & 0xFF) as u8,
        ((b >> 8) & 0xFF) as u8,
        ((b >> 16) & 0xFFFF) as usize,
    )
}

/// Runtime tracing configuration. `Default` is "capture everything into a
/// 1 Mi-event ring" — construct one and hand it to the system's
/// `enable_tracing`.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Ring capacity in events (preallocated up front). When the run emits
    /// more, the *oldest* events are overwritten and counted in
    /// [`TraceSession::dropped`].
    pub capacity: usize,
    /// Bitmask of [`EventKind`]s to capture (see [`masks`]).
    pub mask: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 20,
            mask: masks::ALL,
        }
    }
}

impl TraceConfig {
    /// A config capturing all kinds into a ring of `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            capacity,
            ..TraceConfig::default()
        }
    }

    /// Restricts capture to the given kinds.
    pub fn with_mask(mut self, mask: u32) -> Self {
        self.mask = mask;
        self
    }
}

/// The preallocated event ring. Wraps on overflow, keeping the *latest*
/// events (the interesting end of a run) and counting what it dropped.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest retained event.
    head: usize,
    /// Number of retained events (≤ capacity).
    len: usize,
    /// Events overwritten after the ring filled.
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a ring with room for `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
            self.len += 1;
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        for i in 0..self.len {
            out.push(self.ring[(self.head + i) % self.ring.len().max(1)]);
        }
        out
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been captured (or everything was dropped —
    /// impossible, the ring always retains the newest `capacity`).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.len as u64 + self.dropped
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Moves every retained event into `dst` (oldest first), folds this
    /// ring's drop count into `dst`, and resets this ring to empty.
    ///
    /// Used by the sharded run loop to drain per-shard scratch rings into
    /// the session ring at an epoch barrier: when the scratch capacity
    /// matches the destination capacity, the destination ends up exactly
    /// as if every event had been pushed into it directly — same retained
    /// window, same drop count.
    pub fn take_into(&mut self, dst: &mut TraceBuffer) {
        for i in 0..self.len {
            dst.push(self.ring[(self.head + i) % self.ring.len().max(1)]);
        }
        dst.dropped += self.dropped;
        self.ring.clear();
        self.head = 0;
        self.len = 0;
        self.dropped = 0;
    }
}

/// A component's handle on the trace: shared ring + cached mask + bound
/// component id. Cloneable and `Send`/`Sync` (systems are built inside
/// sweep worker threads). The disabled handle is the `Default`.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    shared: Option<Arc<Mutex<TraceBuffer>>>,
    mask: u32,
    comp: u16,
}

impl Tracer {
    /// The disabled handle: every [`emit`](Tracer::emit) is one branch.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether this handle captures anything at all.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Whether events of `kind` would be captured.
    pub fn wants(&self, kind: EventKind) -> bool {
        self.shared.is_some() && self.mask & kind.bit() != 0
    }

    /// Records an event at `ts_ps` (simulated picoseconds). A no-op unless
    /// tracing is enabled and the kind is selected; must never be used to
    /// influence simulation state.
    #[inline]
    pub fn emit(&self, ts_ps: u64, kind: EventKind, a: u64, b: u64) {
        let Some(shared) = &self.shared else { return };
        if self.mask & kind.bit() == 0 {
            return;
        }
        lock_ring(shared).push(TraceEvent {
            ts_ps,
            comp: self.comp,
            kind: kind as u8,
            a,
            b,
        });
    }

    /// A handle with the same component id and mask but writing into
    /// `buffer` instead of the session ring. The sharded run loop uses
    /// this to redirect a component's events into per-shard scratch rings
    /// for the duration of a parallel pass; a disabled handle stays
    /// effectively disabled (its mask is zero, so nothing is captured).
    pub fn retarget(&self, buffer: Arc<Mutex<TraceBuffer>>) -> Tracer {
        Tracer {
            shared: Some(buffer),
            mask: self.mask,
            comp: self.comp,
        }
    }
}

/// A per-run trace: owns the ring buffer and the component-name registry.
///
/// The owning system creates one from a [`TraceConfig`], registers each
/// component with [`tracer`](TraceSession::tracer) (walk order defines the
/// track order in exports), and reads results back after the run.
#[derive(Debug)]
pub struct TraceSession {
    shared: Arc<Mutex<TraceBuffer>>,
    names: Vec<String>,
    mask: u32,
}

impl TraceSession {
    /// Starts a session, preallocating the ring.
    pub fn new(cfg: &TraceConfig) -> Self {
        TraceSession {
            shared: Arc::new(Mutex::new(TraceBuffer::new(cfg.capacity))),
            names: Vec::new(),
            mask: cfg.mask,
        }
    }

    /// Registers a component and returns its bound [`Tracer`]. Ids are
    /// assigned in call order.
    pub fn tracer(&mut self, name: &str) -> Tracer {
        // Component ids saturate: a pathological design with more than
        // 65535 traced components shares the last track instead of
        // panicking mid-construction.
        let comp = u16::try_from(self.names.len()).unwrap_or(u16::MAX);
        self.names.push(name.to_string());
        Tracer {
            shared: Some(Arc::clone(&self.shared)),
            mask: self.mask,
            comp,
        }
    }

    /// Registered component names, indexed by component id.
    pub fn component_names(&self) -> &[String] {
        &self.names
    }

    /// The active event mask.
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        lock_ring(&self.shared).events()
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        lock_ring(&self.shared).dropped()
    }

    /// Total events captured (retained + dropped).
    pub fn total(&self) -> u64 {
        lock_ring(&self.shared).total()
    }

    /// A handle on the session ring itself, for drains that bypass the
    /// per-component [`Tracer`] path (e.g. merging per-shard scratch
    /// rings back in delivery order).
    pub fn shared_buffer(&self) -> Arc<Mutex<TraceBuffer>> {
        Arc::clone(&self.shared)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        lock_ring(&self.shared).capacity()
    }

    /// Renders the Chrome trace-event JSON for this session.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(&self.events(), &self.names, self.dropped())
    }

    /// Renders the plain-text event log for this session.
    pub fn text_log(&self) -> String {
        export::text_log(&self.events(), &self.names, self.dropped())
    }

    /// Derives the protocol scoreboards from the captured events. An
    /// in-process ring only ever holds valid kind bytes (`emit` takes an
    /// [`EventKind`]), so decode failure is unreachable and folded into
    /// an empty scoreboard rather than a panic.
    pub fn scoreboard(&self) -> scoreboard::Scoreboard {
        scoreboard::Scoreboard::from_events(&self.events()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, a: u64) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            comp: 0,
            kind: EventKind::Marker as u8,
            a,
            b: 0,
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let mut b = TraceBuffer::new(8);
        for i in 0..5 {
            b.push(ev(i, i));
        }
        assert_eq!(b.len(), 5);
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.total(), 5);
        let evs = b.events();
        assert_eq!(evs.len(), 5);
        assert_eq!(evs[0].a, 0);
        assert_eq!(evs[4].a, 4);
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_dropped() {
        let mut b = TraceBuffer::new(4);
        for i in 0..10 {
            b.push(ev(i, i));
        }
        assert_eq!(b.len(), 4);
        assert_eq!(b.dropped(), 6, "6 oldest events overwritten");
        assert_eq!(b.total(), 10);
        let evs = b.events();
        assert_eq!(
            evs.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9],
            "latest events retained, oldest first"
        );
    }

    #[test]
    fn ring_capacity_one_degenerates_gracefully() {
        let mut b = TraceBuffer::new(1);
        b.push(ev(1, 1));
        b.push(ev(2, 2));
        assert_eq!(b.len(), 1);
        assert_eq!(b.dropped(), 1);
        assert_eq!(b.events()[0].a, 2);
    }

    #[test]
    fn take_into_matches_direct_pushes_exactly() {
        // Push the same stream (a) directly and (b) via a scratch ring of
        // equal capacity drained at an arbitrary point: retained window
        // and drop accounting must be identical.
        let cap = 4;
        let mut direct = TraceBuffer::new(cap);
        let mut main = TraceBuffer::new(cap);
        let mut scratch = TraceBuffer::new(cap);
        for i in 0..3 {
            direct.push(ev(i, i));
            main.push(ev(i, i));
        }
        for i in 3..10 {
            direct.push(ev(i, i));
            scratch.push(ev(i, i));
        }
        scratch.take_into(&mut main);
        assert_eq!(main.events(), direct.events());
        assert_eq!(main.dropped(), direct.dropped());
        assert_eq!(main.total(), direct.total());
        assert!(scratch.is_empty());
        assert_eq!(scratch.dropped(), 0);
        // The drained scratch ring is reusable.
        scratch.push(ev(99, 99));
        assert_eq!(scratch.events()[0].a, 99);
    }

    #[test]
    fn retarget_keeps_comp_and_mask() {
        let cfg = TraceConfig::with_capacity(16).with_mask(masks::NOC);
        let mut s = TraceSession::new(&cfg);
        let _runloop = s.tracer("runloop");
        let t = s.tracer("mesh");
        assert_eq!(s.capacity(), 16);
        let scratch = Arc::new(Mutex::new(TraceBuffer::new(s.capacity())));
        let rt = t.retarget(Arc::clone(&scratch));
        rt.emit(10, EventKind::NocInject, 1, 0);
        rt.emit(11, EventKind::EdgeFast, 1, 0); // masked out, like the original
        assert!(s.events().is_empty(), "session ring untouched");
        let main = s.shared_buffer();
        scratch.lock().unwrap().take_into(&mut main.lock().unwrap());
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].comp, 1, "component id preserved across retarget");
        assert_eq!(evs[0].kind, EventKind::NocInject as u8);
    }

    #[test]
    fn disabled_tracer_captures_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(1, EventKind::Marker, 1, 2); // must be a no-op, not a panic
    }

    #[test]
    fn mask_filters_kinds() {
        let cfg = TraceConfig::with_capacity(16).with_mask(masks::NOC);
        let mut s = TraceSession::new(&cfg);
        let t = s.tracer("mesh");
        assert!(t.wants(EventKind::NocInject));
        assert!(!t.wants(EventKind::EdgeFast));
        t.emit(10, EventKind::NocInject, 1, 0);
        t.emit(11, EventKind::EdgeFast, 1, 0);
        let evs = s.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, EventKind::NocInject as u8);
    }

    #[test]
    fn session_registers_component_ids_in_order() {
        let mut s = TraceSession::new(&TraceConfig::default());
        let a = s.tracer("alpha");
        let b = s.tracer("beta");
        a.emit(1, EventKind::Marker, 0, 0);
        b.emit(2, EventKind::Marker, 0, 0);
        assert_eq!(s.component_names(), &["alpha", "beta"]);
        let evs = s.events();
        assert_eq!(evs[0].comp, 0);
        assert_eq!(evs[1].comp, 1);
    }

    #[test]
    fn pack_roundtrips() {
        assert_eq!(unpack_noc(pack_noc(3, 11, 2, 5)), (3, 11, 2, 5));
        assert_eq!(unpack_hop(pack_hop(7, 4, 1)), (7, 4, 1));
        assert_eq!(unpack_mesi(pack_mesi(1, 2, 9)), (1, 2, 9));
    }

    #[test]
    fn kind_roundtrips_through_u8() {
        for k in 0..KIND_COUNT as u8 {
            let kind = EventKind::from_u8(k).unwrap();
            assert_eq!(kind as u8, k);
            assert_eq!(kind.bit(), 1 << k);
        }
        assert_eq!(EventKind::from_u8(KIND_COUNT as u8), None);
    }
}
