//! Trace exporters: Chrome trace-event JSON and a plain-text event log.
//!
//! The Chrome format is the `{"traceEvents": [...]}` JSON object consumed
//! by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): open the
//! UI and drag the file in. Every traced component gets its own named
//! track (`tid` = component id, with a `thread_name` metadata record), and
//! NoC messages carry flow arrows (`s`/`t`/`f` events keyed by the
//! transaction id stamped at injection) so a coherence message can be
//! followed hop by hop across router tracks.

use std::io;
use std::path::Path;

use crate::{mesi, unpack_hop, unpack_mesi, unpack_noc, EventKind, TraceEvent};

/// Duration given to slice events, in microseconds. Most traced actions
/// occupy one fast-clock cycle (1 ns at 1 GHz); drawing them as 1 ns
/// slices keeps tracks readable at typical zoom levels.
const SLICE_US: f64 = 0.001;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ts_ps: u64) -> f64 {
    ts_ps as f64 / 1_000_000.0
}

fn comp_name(names: &[String], comp: u16) -> String {
    names
        .get(comp as usize)
        .cloned()
        .unwrap_or_else(|| format!("comp{comp}"))
}

/// Human-readable `name` and `args` fragment for one event.
fn describe(ev: &TraceEvent) -> (String, String) {
    let Some(kind) = EventKind::from_u8(ev.kind) else {
        return (
            format!("unknown#{}", ev.kind),
            format!("\"a\":{},\"b\":{}", ev.a, ev.b),
        );
    };
    match kind {
        EventKind::NocInject | EventKind::NocEject => {
            let (src, dst, vnet, flits) = unpack_noc(ev.b);
            (
                format!("{} {}#{}", kind.label(), vnet_label(vnet), ev.a),
                format!(
                    "\"txn\":{},\"src\":{src},\"dst\":{dst},\"vnet\":\"{}\",\"flits\":{flits}",
                    ev.a,
                    vnet_label(vnet)
                ),
            )
        }
        EventKind::NocRoute => {
            let (node, port, vnet) = unpack_hop(ev.b);
            (
                format!("{} {}#{}", kind.label(), vnet_label(vnet), ev.a),
                format!(
                    "\"txn\":{},\"node\":{node},\"out_port\":{port},\"vnet\":\"{}\"",
                    ev.a,
                    vnet_label(vnet)
                ),
            )
        }
        EventKind::MesiTransition => {
            let (old, new, peer) = unpack_mesi(ev.b);
            (
                format!("{}→{}", mesi::label(old), mesi::label(new)),
                format!(
                    "\"line\":\"{:#x}\",\"from\":\"{}\",\"to\":\"{}\",\"peer\":{peer}",
                    ev.a,
                    mesi::label(old),
                    mesi::label(new)
                ),
            )
        }
        EventKind::HorizonSkip => (
            kind.label().to_string(),
            format!("\"fast_skipped\":{},\"slow_skipped\":{}", ev.a, ev.b),
        ),
        _ => (
            kind.label().to_string(),
            format!("\"a\":{},\"b\":{}", ev.a, ev.b),
        ),
    }
}

fn vnet_label(vnet: usize) -> &'static str {
    match vnet {
        0 => "req",
        1 => "fwd",
        2 => "resp",
        _ => "vnet?",
    }
}

/// Renders events as Chrome trace-event JSON. `names` maps component ids
/// to track names; `dropped` (ring overflow count) is recorded in the
/// process metadata so a truncated trace is visibly truncated.
pub fn chrome_trace(events: &[TraceEvent], names: &[String], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 1024);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"duet-sim (dropped_events={dropped})\"}}}}"
    ));
    for (id, name) in names.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"ph\":\"M\",\"pid\":0,\"tid\":{id},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
    for ev in events {
        let (name, args) = describe(ev);
        let ts = ts_us(ev.ts_ps);
        let cat = EventKind::from_u8(ev.kind).map_or("unknown", |k| k.label());
        out.push_str(&format!(
            ",\n{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{ts:.6},\"dur\":{SLICE_US:.6},\"name\":\"{}\",\"cat\":\"{cat}\",\"args\":{{{args}}}}}",
            ev.comp,
            esc(&name)
        ));
        // Flow arrows across NoC hops: the transaction id stamped at
        // injection binds an `s` (start) at the inject slice, `t` (step)
        // at each route slice, and `f` (finish) at the eject slice.
        let flow_ph = match EventKind::from_u8(ev.kind) {
            Some(EventKind::NocInject) => Some("s"),
            Some(EventKind::NocRoute) => Some("t"),
            Some(EventKind::NocEject) => Some("f"),
            _ => None,
        };
        if let Some(ph) = flow_ph {
            let bp = if ph == "f" { ",\"bp\":\"e\"" } else { "" };
            out.push_str(&format!(
                ",\n{{\"ph\":\"{ph}\",\"pid\":0,\"tid\":{},\"ts\":{ts:.6},\"id\":{},\"name\":\"noc-txn\",\"cat\":\"noc\"{bp}}}",
                ev.comp, ev.a
            ));
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Renders events as a plain-text log, one line per event:
/// `<ts_ps> <component> <kind> <details>`.
pub fn text_log(events: &[TraceEvent], names: &[String], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 64 + 128);
    out.push_str(&format!(
        "# duet-trace text log: {} events retained, {} dropped\n",
        events.len(),
        dropped
    ));
    for ev in events {
        let (name, _) = describe(ev);
        out.push_str(&format!(
            "{:>12} {:<16} {}\n",
            ev.ts_ps,
            comp_name(names, ev.comp),
            name
        ));
    }
    out
}

/// Writes [`chrome_trace`] JSON to `path`.
///
/// # Errors
///
/// Any underlying I/O error, annotated with the path.
pub fn write_chrome_trace<P: AsRef<Path>>(
    path: P,
    events: &[TraceEvent],
    names: &[String],
    dropped: u64,
) -> io::Result<()> {
    write_annotated(path.as_ref(), &chrome_trace(events, names, dropped))
}

/// Writes the [`text_log`] rendering to `path`.
///
/// # Errors
///
/// Any underlying I/O error, annotated with the path.
pub fn write_text_log<P: AsRef<Path>>(
    path: P,
    events: &[TraceEvent],
    names: &[String],
    dropped: u64,
) -> io::Result<()> {
    write_annotated(path.as_ref(), &text_log(events, names, dropped))
}

fn write_annotated(path: &Path, body: &str) -> io::Result<()> {
    std::fs::write(path, body).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("writing trace to {}: {e}", path.display()),
        )
    })
}

/// Checks that `s` is structurally well-formed JSON (objects, arrays,
/// strings, numbers, literals). Dependency-free — used by the trace smoke
/// tests to validate exported files without pulling in a JSON crate.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => parse_string(b, pos),
        b't' => parse_lit(b, pos, "true"),
        b'f' => parse_lit(b, pos, "false"),
        b'n' => parse_lit(b, pos, "null"),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(format!("unexpected byte {:?} at {}", other as char, *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(&b',') => *pos += 1,
            Some(&b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == start {
        return Err(format!("malformed number at byte {start}"));
    }
    Ok(())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pack_noc, EventKind, TraceEvent};

    fn ev(ts: u64, comp: u16, kind: EventKind, a: u64, b: u64) -> TraceEvent {
        TraceEvent {
            ts_ps: ts,
            comp,
            kind: kind as u8,
            a,
            b,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks_and_flows() {
        let names = vec!["runloop".to_string(), "mesh".to_string()];
        let events = vec![
            ev(1000, 0, EventKind::EdgeFast, 1, 0),
            ev(1000, 1, EventKind::NocInject, 42, pack_noc(0, 3, 0, 2)),
            ev(2000, 1, EventKind::NocRoute, 42, crate::pack_hop(0, 2, 0)),
            ev(3000, 1, EventKind::NocEject, 42, pack_noc(0, 3, 0, 2)),
        ];
        let json = chrome_trace(&events, &names, 0);
        validate_json(&json).expect("exporter must emit valid JSON");
        // Named per-component tracks.
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"mesh\"}"));
        assert!(json.contains("\"thread_name\",\"args\":{\"name\":\"runloop\"}"));
        // Flow arrow start/step/finish keyed by the transaction id.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"t\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"id\":42"));
    }

    #[test]
    fn text_log_mentions_drops_and_kinds() {
        let names = vec!["l3@n0".to_string()];
        let events = vec![ev(
            5000,
            0,
            EventKind::MesiTransition,
            0x40,
            crate::pack_mesi(0, 2, 1),
        )];
        let log = text_log(&events, &names, 7);
        assert!(log.contains("7 dropped"));
        assert!(log.contains("l3@n0"));
        assert!(log.contains("I→E/M"));
    }

    #[test]
    fn validate_json_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e4],\"b\":\"x\\\"y\",\"c\":null}").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2").is_err());
        assert!(validate_json("{} trailing").is_err());
    }

    #[test]
    fn names_are_escaped() {
        let names = vec!["weird\"name\\".to_string()];
        let json = chrome_trace(&[], &names, 0);
        validate_json(&json).unwrap();
    }
}
